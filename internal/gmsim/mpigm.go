package gmsim

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/types"
)

// Config tunes the MPI-over-GM protocol.
type Config struct {
	// EagerLimit is the largest message sent eagerly; longer messages use
	// the RTS/CTS rendezvous of MPICH/GM (default 16 KB, its
	// threshold's order of magnitude).
	EagerLimit int
}

func (c Config) withDefaults() Config {
	if c.EagerLimit <= 0 {
		c.EagerLimit = 16 * 1024
	}
	return c
}

// Message kinds of the MPI-over-GM wire protocol.
const (
	kindEager uint8 = 1
	kindRTS   uint8 = 2
	kindCTS   uint8 = 3
	kindRData uint8 = 4
)

const gmHdrSize = 16 // kind(1) pad(3) tag(4) seq(4) len(4)

func encGM(kind uint8, tag int, seq uint32, payload []byte, length int) []byte {
	buf := make([]byte, gmHdrSize+len(payload))
	buf[0] = kind
	binary.BigEndian.PutUint32(buf[4:], uint32(tag))
	binary.BigEndian.PutUint32(buf[8:], seq)
	binary.BigEndian.PutUint32(buf[12:], uint32(length))
	copy(buf[gmHdrSize:], payload)
	return buf
}

func decGM(msg []byte) (kind uint8, tag int, seq uint32, length int, payload []byte, err error) {
	if len(msg) < gmHdrSize {
		return 0, 0, 0, 0, nil, fmt.Errorf("gmsim: short message")
	}
	return msg[0],
		int(binary.BigEndian.Uint32(msg[4:])),
		binary.BigEndian.Uint32(msg[8:]),
		int(binary.BigEndian.Uint32(msg[12:])),
		msg[gmHdrSize:], nil
}

// Status mirrors mpi.Status for the baseline.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// Request is one non-blocking MPI-over-GM operation.
type Request struct {
	c      *Comm
	isSend bool
	done   bool
	status Status

	// Send state.
	dst  int
	tag  int
	data []byte
	seq  uint32

	// Receive state.
	buf     []byte
	wantSrc int
	wantTag int
}

// Done reports completion without driving progress.
func (r *Request) Done() bool { return r.done }

type uexGM struct {
	src, tag int
	eager    bool
	data     []byte // eager payload
	seq      uint32 // rendezvous id
	length   int
}

// Comm is one rank of an MPI-over-GM job (MPI_THREAD_SINGLE, like the
// Portals-based Comm).
type Comm struct {
	port *Port
	rank int
	size int
	nids []types.NID
	byN  map[types.NID]int
	cfg  Config

	posted     []*Request          // receive queue, post order
	unexpected []*uexGM            // arrival order
	sendQ      map[uint32]*Request // rendezvous sends awaiting CTS / completion
	incoming   map[uint32]*Request // rendezvous receives awaiting data
	nextSeq    uint32
}

// Wildcards, mirroring the Portals-based MPI.
const (
	AnySource = -1
	AnyTag    = -1
)

// NewComm builds rank's communicator; nids maps rank → node.
func NewComm(port *Port, rank int, nids []types.NID, cfg Config) *Comm {
	byN := make(map[types.NID]int, len(nids))
	for r, n := range nids {
		byN[n] = r
	}
	return &Comm{
		port: port, rank: rank, size: len(nids), nids: nids, byN: byN,
		cfg:      cfg.withDefaults(),
		sendQ:    make(map[uint32]*Request),
		incoming: make(map[uint32]*Request),
	}
}

// Rank and Size report job coordinates.
func (c *Comm) Rank() int { return c.rank }
func (c *Comm) Size() int { return c.size }

// Port exposes the underlying port (for stats).
func (c *Comm) Port() *Port { return c.port }

// Isend starts a non-blocking send.
func (c *Comm) Isend(buf []byte, dst, tag int) (*Request, error) {
	if dst < 0 || dst >= c.size {
		return nil, fmt.Errorf("gmsim: rank %d out of range", dst)
	}
	req := &Request{c: c, isSend: true, dst: dst, tag: tag, data: buf}
	if len(buf) <= c.cfg.EagerLimit {
		// Eager: data goes now; standard-mode send is locally complete.
		if err := c.port.Send(c.nids[dst], encGM(kindEager, tag, 0, buf, len(buf))); err != nil {
			return nil, err
		}
		req.done = true
		req.status = Status{Count: len(buf)}
		return req, nil
	}
	// Rendezvous: announce and wait for the receiver's library to grant.
	// No data can move until BOTH sides have made library calls — the
	// flat line of Figure 6.
	req.seq = c.nextSeq
	c.nextSeq++
	c.sendQ[req.seq] = req
	if err := c.port.Send(c.nids[dst], encGM(kindRTS, tag, req.seq, nil, len(buf))); err != nil {
		return nil, err
	}
	return req, nil
}

// Irecv starts a non-blocking receive.
func (c *Comm) Irecv(buf []byte, src, tag int) (*Request, error) {
	if src != AnySource && (src < 0 || src >= c.size) {
		return nil, fmt.Errorf("gmsim: rank %d out of range", src)
	}
	req := &Request{c: c, buf: buf, wantSrc: src, wantTag: tag}
	c.Progress() // drain NIC buffers so ordering is preserved
	if rec := c.searchUnexpected(src, tag); rec != nil {
		c.consume(req, rec)
		return req, nil
	}
	c.posted = append(c.posted, req)
	return req, nil
}

func match(wantSrc, wantTag, src, tag int) bool {
	return (wantSrc == AnySource || wantSrc == src) && (wantTag == AnyTag || wantTag == tag)
}

func (c *Comm) searchUnexpected(src, tag int) *uexGM {
	for i, rec := range c.unexpected {
		if match(src, tag, rec.src, rec.tag) {
			c.unexpected = append(c.unexpected[:i], c.unexpected[i+1:]...)
			return rec
		}
	}
	return nil
}

func (c *Comm) consume(req *Request, rec *uexGM) {
	if rec.eager {
		n := copy(req.buf, rec.data)
		c.port.CopiedBytes.Add(int64(n)) // the unexpected-eager copy
		req.done = true
		req.status = Status{Source: rec.src, Tag: rec.tag, Count: n}
		return
	}
	// Unexpected rendezvous: grant now; data arrives at a later Progress.
	c.incoming[rec.seq] = req
	req.wantSrc = rec.src
	req.wantTag = rec.tag
	_ = c.port.Send(c.nids[rec.src], encGM(kindCTS, rec.tag, rec.seq, nil, rec.length))
}

// matchPosted finds (and removes) the oldest posted receive matching an
// arrival.
func (c *Comm) matchPosted(src, tag int) *Request {
	for i, req := range c.posted {
		if match(req.wantSrc, req.wantTag, src, tag) {
			c.posted = append(c.posted[:i], c.posted[i+1:]...)
			return req
		}
	}
	return nil
}

// Progress drains the port and advances the protocol. This is the ONLY
// place receive-side protocol work happens; it runs exclusively inside
// library calls.
func (c *Comm) Progress() {
	for {
		srcNID, msg, ok := c.port.Receive()
		if !ok {
			return
		}
		kind, tag, seq, length, payload, err := decGM(msg)
		if err != nil {
			continue
		}
		src := c.byN[srcNID]
		switch kind {
		case kindEager:
			if req := c.matchPosted(src, tag); req != nil {
				n := copy(req.buf, payload)
				c.port.CopiedBytes.Add(int64(n)) // eager copy out of NIC buffer
				req.done = true
				req.status = Status{Source: src, Tag: tag, Count: n}
			} else {
				c.unexpected = append(c.unexpected, &uexGM{src: src, tag: tag, eager: true, data: payload})
			}
		case kindRTS:
			if req := c.matchPosted(src, tag); req != nil {
				c.incoming[seq] = req
				req.wantSrc, req.wantTag = src, tag
				_ = c.port.Send(c.nids[src], encGM(kindCTS, tag, seq, nil, length))
			} else {
				c.unexpected = append(c.unexpected, &uexGM{src: src, tag: tag, seq: seq, length: length})
			}
		case kindCTS:
			if req := c.sendQ[seq]; req != nil {
				delete(c.sendQ, seq)
				// gm_directed_send analogue: data straight to the user
				// buffer on the other side, no bounce copy.
				_ = c.port.Send(c.nids[req.dst], encGM(kindRData, req.tag, seq, req.data, len(req.data)))
				req.done = true
				req.status = Status{Count: len(req.data)}
			}
		case kindRData:
			if req := c.incoming[seq]; req != nil {
				delete(c.incoming, seq)
				n := copy(req.buf, payload)
				req.done = true
				req.status = Status{Source: req.wantSrc, Tag: tag, Count: n}
			}
		}
	}
}

// Wait spins on Progress until the request completes — the application
// must lend its CPU to the protocol.
func (r *Request) Wait() (Status, error) {
	for !r.done {
		r.c.Progress()
		if !r.done {
			time.Sleep(20 * time.Microsecond)
		}
	}
	return r.status, nil
}

// Test makes one progress pass and reports completion.
func (r *Request) Test() (bool, Status) {
	r.c.Progress()
	return r.done, r.status
}

// Send and Recv are the blocking forms.
func (c *Comm) Send(buf []byte, dst, tag int) error {
	req, err := c.Isend(buf, dst, tag)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

func (c *Comm) Recv(buf []byte, src, tag int) (Status, error) {
	req, err := c.Irecv(buf, src, tag)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// Barrier is a linear gather+release through rank 0 — sufficient for the
// two-node experiments this baseline exists for.
func (c *Comm) Barrier() error {
	const barrierTag = 1<<30 | 1
	token := []byte{1}
	buf := make([]byte, 1)
	if c.rank == 0 {
		for r := 1; r < c.size; r++ {
			if _, err := c.Recv(buf, r, barrierTag); err != nil {
				return err
			}
		}
		for r := 1; r < c.size; r++ {
			if err := c.Send(token, r, barrierTag); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Send(token, 0, barrierTag); err != nil {
		return err
	}
	_, err := c.Recv(buf, 0, barrierTag)
	return err
}

// WaitAll completes a batch of requests.
func WaitAll(reqs ...*Request) error {
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil {
			return err
		}
	}
	return nil
}
