// Package gmsim is the comparison baseline of §5.3: a GM-like message
// layer that is OS-bypass but NOT application-bypass, plus an MPI binding
// with the two-level eager/rendezvous protocol of MPICH/GM 1.2.7.
//
// The architectural contrast with Portals, and the whole point of
// Figure 6, lives in one property: incoming traffic is parked in
// port-owned buffers (the analogue of GM's DMA receive tokens) and NO
// protocol processing happens until the application calls into the
// library (Receive/Progress). A rendezvous handshake therefore advances
// only inside MPI calls: "MPICH/GM does not make any progress on message
// passing until we either wait for the messages or make other calls to
// the MPI library."
package gmsim

import (
	"sync"
	"sync/atomic"

	"repro/internal/transport"
	"repro/internal/types"
)

// Port is a process's attachment to the fabric, GM-style: sends go out
// immediately (the NIC handles the outbound path), receives accumulate
// raw until the application polls.
type Port struct {
	ep transport.Endpoint

	mu     sync.Mutex
	inbox  []rawMsg
	closed bool

	// Stats: copies made by the library on the receive path, and
	// messages parked awaiting a poll.
	CopiedBytes atomic.Int64
	Parked      atomic.Int64
}

type rawMsg struct {
	src types.NID
	msg []byte
}

// Open attaches a port at nid.
func Open(net transport.Network, nid types.NID) (*Port, error) {
	p := &Port{}
	ep, err := net.Attach(nid, p.onMessage)
	if err != nil {
		return nil, err
	}
	p.ep = ep
	return p, nil
}

// onMessage is the "NIC": it parks the message and returns. Nothing else
// happens until the application polls — this is the no-application-bypass
// property under test.
func (p *Port) onMessage(src types.NID, msg []byte) {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	p.mu.Lock()
	if !p.closed {
		p.inbox = append(p.inbox, rawMsg{src: src, msg: cp})
		p.Parked.Add(1)
	}
	p.mu.Unlock()
}

// Send transmits data to dst (gm_send: asynchronous, reliable, ordered).
func (p *Port) Send(dst types.NID, msg []byte) error {
	return p.ep.Send(dst, msg)
}

// Receive polls one parked message (gm_receive). ok is false when the
// inbox is empty.
func (p *Port) Receive() (src types.NID, msg []byte, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.inbox) == 0 {
		return 0, nil, false
	}
	m := p.inbox[0]
	p.inbox = p.inbox[1:]
	p.Parked.Add(-1)
	return m.src, m.msg, true
}

// Pending reports the parked message count without consuming.
func (p *Port) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.inbox)
}

// LocalNID reports the attached node id.
func (p *Port) LocalNID() types.NID { return p.ep.LocalNID() }

// Close detaches the port.
func (p *Port) Close() error {
	p.mu.Lock()
	p.closed = true
	p.inbox = nil
	p.mu.Unlock()
	return p.ep.Close()
}
