package gmsim

import (
	"fmt"
	"sync"

	"repro/internal/transport"
	"repro/internal/types"
)

// World is a launched MPI-over-GM job on a raw fabric.
type World struct {
	ports []*Port
	comms []*Comm
}

// NewWorld attaches n ports (NIDs 1..n) and builds their communicators.
func NewWorld(net transport.Network, n int, cfg Config) (*World, error) {
	nids := make([]types.NID, n)
	for r := range nids {
		nids[r] = types.NID(r + 1)
	}
	w := &World{}
	for r := 0; r < n; r++ {
		port, err := Open(net, nids[r])
		if err != nil {
			return nil, fmt.Errorf("gmsim: rank %d: %w", r, err)
		}
		w.ports = append(w.ports, port)
		w.comms = append(w.comms, NewComm(port, r, nids, cfg))
	}
	return w, nil
}

// Comm returns rank's communicator.
func (w *World) Comm(rank int) *Comm { return w.comms[rank] }

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.comms) }

// Run executes f concurrently on every rank and returns the first error.
func (w *World) Run(f func(c *Comm) error) error {
	errs := make([]error, len(w.comms))
	var wg sync.WaitGroup
	for r, c := range w.comms {
		wg.Add(1)
		go func(r int, c *Comm) {
			defer wg.Done()
			errs[r] = f(c)
		}(r, c)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}

// Close detaches every port.
func (w *World) Close() {
	for _, p := range w.ports {
		p.Close()
	}
}
