// Package bufpool provides the shared buffer pool behind the fast receive
// path: ack/reply encoding in internal/core, outbound transmission in
// internal/nicsim, and the per-packet copy in internal/transport/simnet all
// draw from (and return to) the same size-classed sync.Pool, so the
// steady-state delivery goroutine allocates nothing.
//
// Ownership rules (docs/PERF.md spells out the full contract): exactly one
// owner at a time; whoever calls Get must arrange exactly one Release once
// the bytes have been copied onward or written out. A buffer that is never
// released is merely garbage-collected (a future pool miss, not a leak).
// The contents of a fresh buffer are undefined — callers overwrite the
// whole length they asked for.
//
// The one-owner contract is machine-checked by portalsvet's ownership
// pass (docs/LINT.md):
//
//lint:resource bufpool.Get -> Buf.Release
package bufpool

import (
	"sync"
	"sync/atomic"
)

// Size classes are powers of two from 256 B to 64 KiB; requests above the
// largest class fall back to a plain allocation and are never pooled
// (jumbo buffers would otherwise pin large memory in the pool).
const (
	minClassBits = 8
	numClasses   = 9
	maxPooled    = 1 << (minClassBits + numClasses - 1)
)

var classes [numClasses]sync.Pool

// Package-level traffic counters, so the pool hit rate is observable no
// matter which subsystem is calling (sync/atomic per the atomicsonly rule).
var (
	gets atomic.Int64
	hits atomic.Int64
	puts atomic.Int64
)

// Buf is a pooled byte buffer. The zero value is not usable; obtain one
// from Get and hand it back with Release.
type Buf struct {
	b     []byte
	class int8 // size-class index; -1 marks an unpooled (oversized) buffer
	fresh bool // allocated by this Get rather than reused from the pool
}

// Bytes returns the buffer's contents: exactly the n bytes requested from
// Get. The slice is invalid after Release.
func (b *Buf) Bytes() []byte { return b.b }

// Reused reports whether this buffer came out of the pool rather than from
// a fresh allocation — the per-interface pool-hit counters feed off it.
func (b *Buf) Reused() bool { return !b.fresh }

// Release returns the buffer to its size class. Releasing an oversized
// (unpooled) buffer is a no-op. The caller must not touch Bytes afterwards;
// the next Get may hand the same memory to another goroutine.
//
//lint:noalloc the release path returns memory; it must not create any
func (b *Buf) Release() {
	if b == nil || b.class < 0 {
		return
	}
	puts.Add(1)
	b.b = b.b[:cap(b.b)]
	classes[b.class].Put(b)
}

// classFor returns the smallest size class holding n bytes (n ≤ maxPooled).
func classFor(n int) int {
	c := 0
	for 1<<(minClassBits+c) < n {
		c++
	}
	return c
}

// Get returns a buffer of length n, reusing pooled memory when a buffer of
// n's size class is available.
//
//lint:noalloc steady state is pool hits; the misses below are the warmup
func Get(n int) *Buf {
	gets.Add(1)
	if n > maxPooled {
		//lint:ignore noalloc jumbo buffers are deliberately unpooled; callers sized for the fast path never hit this
		return &Buf{b: make([]byte, n), class: -1, fresh: true}
	}
	c := classFor(n)
	//lint:ignore noalloc the pools have no New hook; Pool.Get here only reuses (a nil return is the miss below)
	if v := classes[c].Get(); v != nil {
		b := v.(*Buf)
		b.b = b.b[:n]
		b.fresh = false
		hits.Add(1)
		return b
	}
	//lint:ignore noalloc pool miss: the one-time warmup allocation the steady state amortizes away
	return &Buf{b: make([]byte, n, 1<<(minClassBits+c)), class: int8(c), fresh: true}
}

// Usage reports the cumulative pool traffic: total Gets, how many of those
// were satisfied from the pool, and total Releases back into it.
func Usage() (getCount, hitCount, putCount int64) {
	return gets.Load(), hits.Load(), puts.Load()
}
