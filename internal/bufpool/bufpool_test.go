package bufpool

import "testing"

func TestGetSizesAndReuse(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 4096, maxPooled} {
		b := Get(n)
		if len(b.Bytes()) != n {
			t.Fatalf("Get(%d): len = %d", n, len(b.Bytes()))
		}
		b.Release()
	}
	// A released buffer of the same class should come back (single
	// goroutine, no GC in between — sync.Pool keeps it in the local
	// shard). Under the race detector sync.Pool drops puts at random to
	// shake out ownership bugs, so allow a few attempts before declaring
	// the pool broken.
	reused := false
	for try := 0; try < 20 && !reused; try++ {
		b := Get(512)
		b.Release()
		b2 := Get(300) // same 512-byte class
		reused = b2.Reused()
		if len(b2.Bytes()) != 300 {
			t.Errorf("buffer len = %d, want 300", len(b2.Bytes()))
		}
		b2.Release()
	}
	if !reused {
		t.Error("expected a pool hit for the just-released size class")
	}
}

func TestOversizedUnpooled(t *testing.T) {
	b := Get(maxPooled + 1)
	if len(b.Bytes()) != maxPooled+1 {
		t.Fatalf("len = %d", len(b.Bytes()))
	}
	if b.Reused() {
		t.Error("oversized buffer cannot be a pool hit")
	}
	b.Release() // must be a safe no-op
	if b.class >= 0 {
		t.Error("oversized buffer must not carry a size class")
	}
}

func TestClassFor(t *testing.T) {
	for _, tc := range []struct{ n, class int }{
		{0, 0}, {1, 0}, {256, 0}, {257, 1}, {512, 1}, {513, 2}, {maxPooled, numClasses - 1},
	} {
		if got := classFor(tc.n); got != tc.class {
			t.Errorf("classFor(%d) = %d, want %d", tc.n, got, tc.class)
		}
	}
}

func TestUsageCounters(t *testing.T) {
	g0, _, p0 := Usage()
	b := Get(64)
	b.Release()
	b = Get(64)
	b.Release()
	g1, h1, p1 := Usage()
	if g1-g0 != 2 || p1-p0 != 2 {
		t.Errorf("gets/puts delta = %d/%d, want 2/2", g1-g0, p1-p0)
	}
	if h1 < 1 {
		t.Errorf("expected at least one recorded hit, have %d", h1)
	}
}
