package simnet

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/types"
)

// link models one ordered src→dst pipe: an input queue, a pacer goroutine
// that serializes packets at the configured bandwidth and applies fault
// injection, and a delayer goroutine that holds each packet for the wire
// latency. Splitting pacing from latency lets packet k+1's serialization
// overlap packet k's flight, as on real hardware.
type link struct {
	net *Network
	src types.NID
	dst types.NID

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool

	wire chan timedPkt // pacer → delayer

	held []byte // reorder buffer: a packet waiting to swap with its successor
}

type timedPkt struct {
	arrival time.Time
	pkt     []byte
}

func newLink(n *Network, src, dst types.NID) *link {
	l := &link{net: n, src: src, dst: dst, wire: make(chan timedPkt, 1024)}
	l.cond = sync.NewCond(&l.mu)
	go l.pace()
	go l.delay()
	return l
}

func (l *link) enqueue(pkt []byte) {
	cp := make([]byte, len(pkt))
	copy(cp, pkt)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	if cap := l.net.cfg.QueueCap; cap > 0 && len(l.queue) >= cap {
		l.mu.Unlock()
		l.net.stats.TailDrops.Add(1)
		l.net.stats.Lost.Add(1)
		return
	}
	l.queue = append(l.queue, cp)
	l.mu.Unlock()
	l.cond.Signal()
}

func (l *link) shutdown() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.queue = nil
	l.mu.Unlock()
	l.cond.Broadcast()
}

// pace pops packets, applies fault injection, serializes them at the link
// bandwidth, and hands them to the delayer stamped with their arrival time.
func (l *link) pace() {
	cfg := l.net.cfg
	var lastEnd time.Time
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			close(l.wire)
			return
		}
		pkt := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()

		// Fault injection. Loss removes the packet; duplication emits it
		// twice; reordering holds it until the next packet passes.
		if cfg.LossRate > 0 && l.net.random() < cfg.LossRate {
			l.net.stats.Lost.Add(1)
			continue
		}
		emit := [][]byte{pkt}
		if cfg.DupRate > 0 && l.net.random() < cfg.DupRate {
			l.net.stats.Duplicated.Add(1)
			emit = append(emit, pkt)
		}
		if cfg.ReorderRate > 0 {
			if l.held != nil {
				emit = append(emit, l.held) // held packet goes AFTER this one
				l.held = nil
				l.net.stats.Reordered.Add(1)
			} else if l.net.random() < cfg.ReorderRate {
				l.held = emit[len(emit)-1]
				emit = emit[:len(emit)-1]
			}
		}

		for _, p := range emit {
			now := time.Now()
			start := now
			if start.Before(lastEnd) {
				start = lastEnd
			}
			end := start
			if cfg.Bandwidth > 0 {
				end = start.Add(time.Duration(float64(len(p)) / float64(cfg.Bandwidth) * float64(time.Second)))
			}
			lastEnd = end
			sleepUntil(end) // link occupied while serializing
			select {
			case l.wire <- timedPkt{arrival: end.Add(cfg.Latency), pkt: p}:
			default:
				// Wire buffer overflow: treat as congestion drop.
				l.net.stats.TailDrops.Add(1)
				l.net.stats.Lost.Add(1)
			}
		}
	}
}

// delay holds each packet until its arrival time, then delivers it.
// Arrival times are monotone per link, so FIFO channel order is correct.
func (l *link) delay() {
	for tp := range l.wire {
		sleepUntil(tp.arrival)
		l.net.deliver(l.src, l.dst, tp.pkt)
	}
}

// sleepUntil waits for a deadline with microsecond fidelity. The Go/Linux
// timer granularity makes short time.Sleep calls cost about a
// millisecond, which would swamp Myrinet-class packet times (a 4 KB
// packet serializes in ~26 µs); the final stretch is therefore a
// cooperative yield loop, which is accurate and still lets every other
// goroutine run.
func sleepUntil(t time.Time) {
	for {
		d := time.Until(t)
		if d <= 0 {
			return
		}
		if d > 500*time.Microsecond {
			time.Sleep(d - 300*time.Microsecond)
			continue
		}
		runtime.Gosched()
	}
}
