package simnet

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/bufpool"
	"repro/internal/types"
)

// link models one ordered src→dst pipe: an input queue, a pacer goroutine
// that serializes packets at the configured bandwidth and applies fault
// injection, and a delayer goroutine that holds each packet for the wire
// latency. Splitting pacing from latency lets packet k+1's serialization
// overlap packet k's flight, as on real hardware.
//
// Packets travel as pooled buffers (internal/bufpool): enqueue copies the
// caller's bytes into one, and whichever stage removes a packet from the
// pipeline — loss, tail drop, shutdown, or final delivery — releases it.
// Duplication emits an independent pooled copy, never the same buffer
// twice (the delayer releases each buffer exactly once).
type link struct {
	net *Network
	src types.NID
	dst types.NID

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*bufpool.Buf
	closed bool

	// pacer → delayer wire buffer. A cond-guarded slice rather than a
	// channel so the delayer can dequeue the whole pending batch in one
	// lock operation (docs/PERF.md §6); capacity-bounded like the channel
	// it replaced, with overflow treated as a congestion drop.
	wireMu     sync.Mutex
	wireCond   *sync.Cond
	wireQ      []timedPkt
	wireClosed bool

	held *bufpool.Buf // reorder buffer: a packet waiting to swap with its successor
}

// wireCap bounds the pacer→delayer buffer, mirroring the 1024-slot channel
// this stage used to be.
const wireCap = 1024

type timedPkt struct {
	arrival time.Time
	pkt     *bufpool.Buf
}

func newLink(n *Network, src, dst types.NID) *link {
	l := &link{net: n, src: src, dst: dst, wireQ: make([]timedPkt, 0, 64)}
	l.cond = sync.NewCond(&l.mu)
	l.wireCond = sync.NewCond(&l.wireMu)
	go l.pace()
	go l.delay()
	return l
}

func (l *link) enqueue(pkt []byte) {
	// The per-packet copy, into a pooled buffer: the transport contract
	// lets the caller reuse pkt as soon as Send returns.
	cp := bufpool.Get(len(pkt))
	copy(cp.Bytes(), pkt)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		cp.Release()
		return
	}
	if qcap := l.net.cfg.QueueCap; qcap > 0 && len(l.queue) >= qcap {
		l.mu.Unlock()
		l.net.stats.TailDrops.Add(1)
		l.net.stats.Lost.Add(1)
		l.net.recordLoss(l.src, len(cp.Bytes()))
		cp.Release()
		return
	}
	l.queue = append(l.queue, cp)
	l.mu.Unlock()
	l.cond.Signal()
}

func (l *link) shutdown() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	q := l.queue
	l.queue = nil
	l.mu.Unlock()
	for _, b := range q {
		b.Release()
	}
	l.cond.Broadcast()
}

// pace pops packets, applies fault injection, serializes them at the link
// bandwidth, and hands them to the delayer stamped with their arrival time.
func (l *link) pace() {
	cfg := l.net.cfg
	var lastEnd time.Time
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			if l.held != nil {
				l.held.Release()
				l.held = nil
			}
			l.wireMu.Lock()
			l.wireClosed = true
			l.wireMu.Unlock()
			l.wireCond.Signal()
			return
		}
		pkt := l.queue[0]
		l.queue[0] = nil
		l.queue = l.queue[1:]
		l.mu.Unlock()

		// Fault injection. Loss removes the packet; duplication emits an
		// independent copy; reordering holds a packet until the next one
		// passes. emit is a fixed array so pacing allocates nothing.
		if cfg.LossRate > 0 && l.net.random() < cfg.LossRate {
			l.net.stats.Lost.Add(1)
			l.net.recordLoss(l.src, len(pkt.Bytes()))
			pkt.Release()
			continue
		}
		var emit [2]*bufpool.Buf
		ne := 0
		emit[ne] = pkt
		ne++
		if cfg.DupRate > 0 && l.net.random() < cfg.DupRate {
			l.net.stats.Duplicated.Add(1)
			dup := bufpool.Get(len(pkt.Bytes()))
			copy(dup.Bytes(), pkt.Bytes())
			emit[ne] = dup
			ne++
		}
		var after *bufpool.Buf // held packet goes AFTER this batch
		if cfg.ReorderRate > 0 {
			if l.held != nil {
				after = l.held
				l.held = nil
				l.net.stats.Reordered.Add(1)
			} else if l.net.random() < cfg.ReorderRate {
				ne--
				l.held = emit[ne]
				emit[ne] = nil
			}
		}
		for _, p := range emit[:ne] {
			l.transmit(p, &lastEnd, cfg)
		}
		if after != nil {
			l.transmit(after, &lastEnd, cfg)
		}
	}
}

// transmit serializes one packet at the link bandwidth and hands it to the
// delayer; a full wire buffer is a congestion drop, which releases the
// packet here.
//
//lint:consumes p
func (l *link) transmit(p *bufpool.Buf, lastEnd *time.Time, cfg Config) {
	start := time.Now()
	if start.Before(*lastEnd) {
		start = *lastEnd
	}
	end := start
	if cfg.Bandwidth > 0 {
		end = start.Add(time.Duration(float64(len(p.Bytes())) / float64(cfg.Bandwidth) * float64(time.Second)))
	}
	*lastEnd = end
	sleepUntil(end) // link occupied while serializing
	l.wireMu.Lock()
	if l.wireClosed || len(l.wireQ) >= wireCap {
		l.wireMu.Unlock()
		// Wire buffer overflow (or link torn down): congestion drop.
		l.net.stats.TailDrops.Add(1)
		l.net.stats.Lost.Add(1)
		l.net.recordLoss(l.src, len(p.Bytes()))
		p.Release()
		return
	}
	l.wireQ = append(l.wireQ, timedPkt{arrival: end.Add(cfg.Latency), pkt: p})
	l.wireMu.Unlock()
	l.wireCond.Signal()
}

// delay holds each packet until its arrival time, then delivers it.
// Arrival times are monotone per link, so FIFO dequeue order is correct.
// Each wakeup swaps the whole pending batch out under one lock operation;
// a loaded link then pays one mutex round-trip for many packets instead of
// one channel operation each.
func (l *link) delay() {
	var spare []timedPkt // recycled batch backing; owned by this goroutine
	for {
		l.wireMu.Lock()
		for len(l.wireQ) == 0 && !l.wireClosed {
			l.wireCond.Wait()
		}
		if len(l.wireQ) == 0 && l.wireClosed {
			l.wireMu.Unlock()
			return
		}
		batch := l.wireQ
		l.wireQ = spare[:0]
		l.wireMu.Unlock()
		for i := range batch {
			sleepUntil(batch[i].arrival)
			l.net.deliver(l.src, l.dst, batch[i].pkt.Bytes())
			// The handler contract (PacketHandler) requires receivers to
			// copy anything they retain, so the buffer can be recycled now.
			batch[i].pkt.Release()
			batch[i] = timedPkt{}
		}
		spare = batch[:0]
	}
}

// sleepUntil waits for a deadline with microsecond fidelity. The Go/Linux
// timer granularity makes short time.Sleep calls cost about a
// millisecond, which would swamp Myrinet-class packet times (a 4 KB
// packet serializes in ~26 µs); the final stretch is therefore a
// cooperative yield loop, which is accurate and still lets every other
// goroutine run.
func sleepUntil(t time.Time) {
	for {
		d := time.Until(t)
		if d <= 0 {
			return
		}
		if d > 500*time.Microsecond {
			time.Sleep(d - 300*time.Microsecond)
			continue
		}
		runtime.Gosched()
	}
}
