// Package simnet simulates the raw packet fabric the Cplant RTS/CTS stack
// ran on: an UNRELIABLE packet network with configurable latency, per-link
// bandwidth pacing, an MTU, and fault injection (loss, duplication,
// reordering, tail drop). It stands in for the Myrinet hardware of §3 —
// the paper's repro gate — and deliberately offers weaker guarantees than
// Portals needs, so that the rtscts layer has a real job to do.
//
// Timing model: each link (ordered src→dst pair) is a store-and-forward
// pipe. A packet of n bytes occupies the link for n/Bandwidth seconds
// (serialization), then arrives Latency later. Serialization of packet
// k+1 may overlap the flight of packet k, like real wires. Go's sleep
// granularity is coarser than a microsecond, so absolute numbers are
// approximate; relative shape (who is faster, where curves cross) is
// preserved, which is the reproduction target.
package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/metrics"
	"repro/internal/obs/trace"
	"repro/internal/types"
)

// Config describes one fabric.
type Config struct {
	// Latency is the one-way wire latency per packet.
	Latency time.Duration
	// Bandwidth is the link rate in bytes/second; 0 means infinite.
	Bandwidth int64
	// MTU is the largest packet accepted; larger sends fail loudly.
	MTU int
	// LossRate, DupRate, ReorderRate ∈ [0,1) inject faults per packet.
	LossRate    float64
	DupRate     float64
	ReorderRate float64
	// QueueCap bounds each link's input queue; beyond it packets are
	// tail-dropped (counted as lost). 0 means unbounded.
	QueueCap int
	// Seed makes fault injection reproducible.
	Seed int64
}

// Myrinet returns parameters approximating the paper's fabric: Myrinet
// with LANai NICs (~160 MB/s payload rate, a few µs of wire latency,
// 4 KB packets).
func Myrinet() Config {
	return Config{Latency: 5 * time.Microsecond, Bandwidth: 160e6, MTU: 4096}
}

// GigE returns parameters approximating commodity gigabit Ethernet through
// a kernel stack (the "programmable gigabit Ethernet" port of §7).
func GigE() Config {
	return Config{Latency: 30 * time.Microsecond, Bandwidth: 110e6, MTU: 1500}
}

// Instant returns a fabric with no delays and no faults, for fast tests.
func Instant() Config { return Config{MTU: 65536} }

// PacketHandler receives raw packets; pkt must be copied if retained.
type PacketHandler func(src types.NID, pkt []byte)

// Stats counts fabric-level events.
type Stats struct {
	Sent       atomic.Int64
	Delivered  atomic.Int64
	Lost       atomic.Int64
	Duplicated atomic.Int64
	Reordered  atomic.Int64
	TailDrops  atomic.Int64
}

// Network is a simulated fabric.
type Network struct {
	cfg     Config
	stats   Stats
	lossSeq atomic.Uint64 // keys flight-recorder loss instants

	mu     sync.Mutex
	nodes  map[types.NID]*Endpoint
	links  map[linkKey]*link
	rng    *rand.Rand
	closed bool
}

type linkKey struct{ src, dst types.NID }

// New builds a fabric with the given configuration.
func New(cfg Config) *Network {
	if cfg.MTU <= 0 {
		cfg.MTU = 4096
	}
	return &Network{
		cfg:   cfg,
		nodes: make(map[types.NID]*Endpoint),
		links: make(map[linkKey]*link),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Stats exposes the fabric counters.
func (n *Network) Stats() *Stats { return &n.stats }

// RegisterMetrics exposes the fabric counters as CounterFunc views; the
// packet pipeline keeps bumping the same atomics it always did.
func (n *Network) RegisterMetrics(r *metrics.Registry, ls metrics.Labels) {
	st := &n.stats
	r.CounterFunc("portals_fabric_sent_total", "packets accepted by the fabric", ls, st.Sent.Load)
	r.CounterFunc("portals_fabric_delivered_total", "packets handed to a destination handler", ls, st.Delivered.Load)
	r.CounterFunc("portals_fabric_lost_total", "packets removed by loss, congestion, or detached nodes", ls, st.Lost.Load)
	r.CounterFunc("portals_fabric_duplicated_total", "packets duplicated by fault injection", ls, st.Duplicated.Load)
	r.CounterFunc("portals_fabric_reordered_total", "packets swapped past a successor", ls, st.Reordered.Load)
	r.CounterFunc("portals_fabric_tail_drops_total", "packets dropped by full queues", ls, st.TailDrops.Load)
}

// recordLoss stamps a flight-recorder instant for a dropped packet. The
// fabric is protocol-agnostic and cannot see reliability-layer sequence
// numbers, so loss instants are keyed (src, pid 0, per-fabric drop counter)
// with the packet length as the argument.
func (n *Network) recordLoss(src types.NID, size int) {
	if trace.Enabled() {
		trace.Record(trace.StageLoss, uint32(src), 0, n.lossSeq.Add(1), uint64(size))
	}
}

// MTU reports the fabric's packet size limit.
func (n *Network) MTU() int { return n.cfg.MTU }

// Endpoint is a node's attachment to the fabric.
type Endpoint struct {
	net     *Network
	nid     types.NID
	handler PacketHandler
	closed  atomic.Bool
}

// Attach registers a node with its raw-packet handler.
func (n *Network) Attach(nid types.NID, h PacketHandler) (*Endpoint, error) {
	if h == nil {
		return nil, fmt.Errorf("simnet: nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, types.ErrClosed
	}
	if _, dup := n.nodes[nid]; dup {
		return nil, fmt.Errorf("simnet: nid %d already attached", nid)
	}
	ep := &Endpoint{net: n, nid: nid, handler: h}
	n.nodes[nid] = ep
	return ep, nil
}

// Close tears down the fabric and all links.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	links := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	n.links = map[linkKey]*link{}
	n.nodes = map[types.NID]*Endpoint{}
	n.mu.Unlock()
	for _, l := range links {
		l.shutdown()
	}
	return nil
}

// LocalNID reports the attached node id.
func (ep *Endpoint) LocalNID() types.NID { return ep.nid }

// Close detaches the node; packets in flight to it vanish.
func (ep *Endpoint) Close() error {
	ep.closed.Store(true)
	ep.net.mu.Lock()
	if ep.net.nodes[ep.nid] == ep {
		delete(ep.net.nodes, ep.nid)
	}
	ep.net.mu.Unlock()
	return nil
}

// SendPacket queues one packet for dst. It never blocks: congestion beyond
// QueueCap tail-drops, like a real switch. Oversized packets are an error
// (the protocol above must packetize to the MTU).
func (ep *Endpoint) SendPacket(dst types.NID, pkt []byte) error {
	if len(pkt) > ep.net.cfg.MTU {
		return fmt.Errorf("simnet: packet %d exceeds MTU %d", len(pkt), ep.net.cfg.MTU)
	}
	if ep.closed.Load() {
		return types.ErrClosed
	}
	n := ep.net
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return types.ErrClosed
	}
	key := linkKey{src: ep.nid, dst: dst}
	l, ok := n.links[key]
	if !ok {
		l = newLink(n, ep.nid, dst)
		n.links[key] = l
	}
	n.mu.Unlock()
	n.stats.Sent.Add(1)
	l.enqueue(pkt)
	return nil
}

// deliver hands a packet to the destination node, if it is still attached.
func (n *Network) deliver(src, dst types.NID, pkt []byte) {
	n.mu.Lock()
	ep := n.nodes[dst]
	n.mu.Unlock()
	if ep == nil || ep.closed.Load() {
		n.stats.Lost.Add(1)
		n.recordLoss(src, len(pkt))
		return
	}
	n.stats.Delivered.Add(1)
	ep.handler(src, pkt)
}

// random draws a float in [0,1) under the network lock (the rng is shared
// so a single seed makes the whole fabric reproducible).
func (n *Network) random() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64()
}
