package simnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/types"
)

type sink struct {
	mu   sync.Mutex
	pkts []string
}

func (s *sink) handler(src types.NID, pkt []byte) {
	s.mu.Lock()
	s.pkts = append(s.pkts, string(pkt))
	s.mu.Unlock()
}

func (s *sink) got() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.pkts...)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestInstantDelivery(t *testing.T) {
	n := New(Instant())
	defer n.Close()
	var s sink
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, s.handler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := a.SendPacket(2, []byte(fmt.Sprintf("%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(s.got()) == 100 })
	for i, p := range s.got() {
		if p != fmt.Sprintf("%03d", i) {
			t.Fatalf("packet %d = %q (out of order on clean fabric)", i, p)
		}
	}
	if n.Stats().Delivered.Load() != 100 || n.Stats().Lost.Load() != 0 {
		t.Errorf("stats: %+v", n.Stats())
	}
}

func TestMTUEnforced(t *testing.T) {
	n := New(Config{MTU: 64})
	defer n.Close()
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SendPacket(2, make([]byte, 65)); err == nil {
		t.Error("oversized packet accepted")
	}
	if err := a.SendPacket(1, make([]byte, 64)); err != nil {
		t.Errorf("MTU-sized packet rejected: %v", err)
	}
}

func TestLossInjection(t *testing.T) {
	n := New(Config{MTU: 64, LossRate: 0.5, Seed: 7})
	defer n.Close()
	var s sink
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, s.handler); err != nil {
		t.Fatal(err)
	}
	const count = 400
	for i := 0; i < count; i++ {
		if err := a.SendPacket(2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		return n.Stats().Delivered.Load()+n.Stats().Lost.Load() == count
	})
	lost := n.Stats().Lost.Load()
	if lost < count/4 || lost > 3*count/4 {
		t.Errorf("lost %d of %d with 50%% loss", lost, count)
	}
}

func TestDuplicationInjection(t *testing.T) {
	n := New(Config{MTU: 64, DupRate: 1.0, Seed: 1})
	defer n.Close()
	var s sink
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, s.handler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.SendPacket(2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(s.got()) == 20 })
	if n.Stats().Duplicated.Load() != 10 {
		t.Errorf("dups = %d, want 10", n.Stats().Duplicated.Load())
	}
}

func TestReorderInjection(t *testing.T) {
	n := New(Config{MTU: 64, ReorderRate: 0.5, Seed: 3})
	defer n.Close()
	var s sink
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, s.handler); err != nil {
		t.Fatal(err)
	}
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.SendPacket(2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return n.Stats().Reordered.Load() > 0 && len(s.got()) >= count-1 })
	// Verify at least one inversion actually reached the receiver.
	inversions := 0
	prev := -1
	for _, p := range s.got() {
		v := int([]byte(p)[0])
		if v < prev {
			inversions++
		}
		prev = v
	}
	if inversions == 0 {
		t.Error("no inversions observed despite reorder injection")
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	n := New(Config{MTU: 64, Latency: 30 * time.Millisecond})
	defer n.Close()
	var s sink
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, s.handler); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := a.SendPacket(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(s.got()) == 1 })
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("delivered after %v, want ≥ ~30ms", d)
	}
}

func TestBandwidthPacing(t *testing.T) {
	// 1 MB at 10 MB/s should take ~100 ms.
	n := New(Config{MTU: 65536, Bandwidth: 10e6})
	defer n.Close()
	var s sink
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, s.handler); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const packets = 16 // 16 × 64 KB = 1 MB
	for i := 0; i < packets; i++ {
		if err := a.SendPacket(2, make([]byte, 65536)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(s.got()) == packets })
	d := time.Since(start)
	if d < 70*time.Millisecond {
		t.Errorf("1 MB at 10 MB/s delivered in %v — pacing not applied", d)
	}
	if d > 500*time.Millisecond {
		t.Errorf("pacing far too slow: %v", d)
	}
}

func TestTailDrop(t *testing.T) {
	// A slow link with a tiny queue must tail-drop under a burst.
	n := New(Config{MTU: 65536, Bandwidth: 1e6, QueueCap: 2})
	defer n.Close()
	var s sink
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, s.handler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := a.SendPacket(2, make([]byte, 32768)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		st := n.Stats()
		return st.Delivered.Load()+st.Lost.Load() == 50
	})
	if n.Stats().TailDrops.Load() == 0 {
		t.Error("no tail drops under burst on a bounded queue")
	}
}

func TestDetachedDestination(t *testing.T) {
	n := New(Instant())
	defer n.Close()
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	// Destination never attached: packet vanishes (counted lost), like a
	// real fabric. No error to the sender.
	if err := a.SendPacket(9, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return n.Stats().Lost.Load() == 1 })
}

func TestCloseEndpointStopsDelivery(t *testing.T) {
	n := New(Instant())
	defer n.Close()
	var s sink
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach(2, s.handler)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.SendPacket(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return n.Stats().Lost.Load() == 1 })
	if len(s.got()) != 0 {
		t.Error("delivery to closed endpoint")
	}
	if err := b.SendPacket(1, []byte("x")); !errors.Is(err, types.ErrClosed) {
		t.Errorf("send from closed endpoint = %v", err)
	}
}

func TestNetworkCloseIdempotent(t *testing.T) {
	n := New(Instant())
	if _, err := n.Attach(1, func(types.NID, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, func(types.NID, []byte) {}); !errors.Is(err, types.ErrClosed) {
		t.Errorf("attach after close = %v", err)
	}
}

func TestPerPairIsolation(t *testing.T) {
	// Packets between different pairs must not block each other: a slow
	// bulk transfer 1→2 must not delay 3→4 on an uncongested fabric.
	n := New(Config{MTU: 65536, Bandwidth: 2e6})
	defer n.Close()
	var bulk, small sink
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, bulk.handler); err != nil {
		t.Fatal(err)
	}
	c, err := n.Attach(3, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(4, small.handler); err != nil {
		t.Fatal(err)
	}
	// 1 MB bulk at 2 MB/s ≈ 500 ms of occupancy on link 1→2.
	for i := 0; i < 16; i++ {
		if err := a.SendPacket(2, make([]byte, 65536)); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	if err := c.SendPacket(4, []byte("quick")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(small.got()) == 1 })
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("independent pair delayed %v by bulk traffic", d)
	}
}

// Reproducibility: the same seed must produce the same fault pattern —
// the property every "repro" experiment in this repository leans on.
func TestSeedDeterminism(t *testing.T) {
	run := func() (delivered, lost int64) {
		n := New(Config{MTU: 64, LossRate: 0.3, Seed: 1234})
		defer n.Close()
		var s sink
		a, err := n.Attach(1, func(types.NID, []byte) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Attach(2, s.handler); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := a.SendPacket(2, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		waitFor(t, func() bool {
			return n.Stats().Delivered.Load()+n.Stats().Lost.Load() == 200
		})
		return n.Stats().Delivered.Load(), n.Stats().Lost.Load()
	}
	d1, l1 := run()
	d2, l2 := run()
	if d1 != d2 || l1 != l2 {
		t.Errorf("same seed diverged: %d/%d vs %d/%d", d1, l1, d2, l2)
	}
	if l1 == 0 {
		t.Error("no losses at 30% rate")
	}
}
