// Package transport defines the message-delivery abstraction underneath a
// Portals network interface.
//
// A Network connects nodes identified by NID. Attaching to a NID yields an
// Endpoint whose Send delivers a complete message to another node,
// reliably and in order per (source, destination) pair — the service the
// Portals semantics assume (§4.1: "Portals provide reliable, ordered
// delivery of messages between pairs of processes"). How that guarantee is
// obtained differs per implementation:
//
//   - loopback: in-process FIFO queues (always reliable).
//   - simnet + rtscts: an unreliable packet network (loss, duplication,
//     reordering, latency, bandwidth pacing) with a sliding-window
//     RTS/CTS reliability layer on top — the analogue of the Cplant
//     Myrinet MCP + RTS/CTS kernel module stack (§3).
//   - tcp: real kernel TCP sockets, the paper's reference implementation.
package transport

import "repro/internal/types"

// Handler is invoked by the network with each complete message delivered
// to the local node. src is the sending node. The callee must not retain
// msg after returning unless it copies it. Handlers run on the network's
// delivery goroutine — the "NIC engine" — never on an application
// goroutine; this is where application bypass comes from.
type Handler func(src types.NID, msg []byte)

// Endpoint is a node's attachment to a network.
type Endpoint interface {
	// Send delivers msg to the node dst. It may block for pacing or flow
	// control but returns once the message is accepted for reliable
	// delivery (local completion). Send is safe for concurrent use.
	//
	// The implementation must not retain msg after Send returns: the
	// caller may immediately reuse the buffer (the delivery engine
	// recycles pooled ack/reply buffers this way — docs/PERF.md). Every
	// in-tree transport either copies at enqueue (loopback, simnet,
	// rtscts) or writes synchronously before returning (tcp).
	Send(dst types.NID, msg []byte) error
	// LocalNID reports the attached node id.
	LocalNID() types.NID
	// Close detaches from the network; in-flight messages may be lost.
	Close() error
}

// Network is a fabric nodes attach to.
type Network interface {
	// Attach registers a node and its delivery handler. Attaching an
	// already-attached NID fails.
	Attach(nid types.NID, h Handler) (Endpoint, error)
	// Close tears down the fabric and all endpoints.
	Close() error
}
