// Package transport defines the message-delivery abstraction underneath a
// Portals network interface.
//
// A Network connects nodes identified by NID. Attaching to a NID yields an
// Endpoint whose Send delivers a complete message to another node,
// reliably and in order per (source, destination) pair — the service the
// Portals semantics assume (§4.1: "Portals provide reliable, ordered
// delivery of messages between pairs of processes"). How that guarantee is
// obtained differs per implementation:
//
//   - loopback: in-process FIFO queues (always reliable).
//   - simnet + rtscts: an unreliable packet network (loss, duplication,
//     reordering, latency, bandwidth pacing) with a sliding-window
//     RTS/CTS reliability layer on top — the analogue of the Cplant
//     Myrinet MCP + RTS/CTS kernel module stack (§3).
//   - tcp: real kernel TCP sockets, the paper's reference implementation.
package transport

import (
	"repro/internal/bufpool"
	"repro/internal/types"
)

// Handler is invoked by the network with each complete message delivered
// to the local node. src is the sending node. The callee must not retain
// msg after returning unless it copies it. Handlers run on the network's
// delivery goroutine — the "NIC engine" — never on an application
// goroutine; this is where application bypass comes from.
type Handler func(src types.NID, msg []byte)

// Endpoint is a node's attachment to a network.
type Endpoint interface {
	// Send delivers msg to the node dst. It may block for pacing or flow
	// control but returns once the message is accepted for reliable
	// delivery (local completion). Send is safe for concurrent use.
	//
	// The implementation must not retain msg after Send returns: the
	// caller may immediately reuse the buffer (the delivery engine
	// recycles pooled ack/reply buffers this way — docs/PERF.md). Every
	// in-tree transport either copies at enqueue (loopback, simnet,
	// rtscts) or writes synchronously before returning (tcp).
	Send(dst types.NID, msg []byte) error
	// LocalNID reports the attached node id.
	LocalNID() types.NID
	// Close detaches from the network; in-flight messages may be lost.
	Close() error
}

// BufSender is an optional Endpoint fast path for pooled messages: SendBuf
// delivers buf.Bytes() — a complete wire message — to dst, taking ownership
// of the buffer. The transport releases it (or forwards it as a Delivery's
// Buf) once the message is done with; the caller must not touch or Release
// the buffer after the call, whether it returns an error or not. This is
// what lets an in-process fabric move a message from initiator to delivery
// engine with zero copies (docs/PERF.md §6).
type BufSender interface {
	// SendBuf consumes buf: implementations must release it or forward it
	// as a Delivery's Buf on every path, and callers lose ownership at the
	// call — both sides of the contract are machine-checked (docs/LINT.md).
	//
	//lint:consumes buf
	SendBuf(dst types.NID, buf *bufpool.Buf) error
}

// Network is a fabric nodes attach to.
type Network interface {
	// Attach registers a node and its delivery handler. Attaching an
	// already-attached NID fails.
	Attach(nid types.NID, h Handler) (Endpoint, error)
	// Close tears down the fabric and all endpoints.
	Close() error
}

// Delivery is one message of a batched delivery. Unlike Handler's msg,
// ownership of Msg (and its pooled backing Buf, when non-nil) transfers to
// the BatchHandler: the transport neither reuses nor retains them after
// handing the batch over, so batch consumers can queue messages onward —
// e.g. onto a delivery lane — without copying. Whoever finishes with the
// message calls Release exactly once.
type Delivery struct {
	Src types.NID
	Msg []byte
	Buf *bufpool.Buf // pooled backing of Msg; nil when Msg is plainly allocated
}

// Release returns the message's pooled buffer, if any. Msg is invalid
// afterwards.
func (d *Delivery) Release() {
	if d.Buf != nil {
		d.Buf.Release()
		d.Buf = nil
	}
	d.Msg = nil
}

// BatchHandler consumes one batch of delivered messages. The slice itself
// is valid only during the call (the transport reuses it), but each
// Delivery's message is owned by the handler — see Delivery. Batches for
// one endpoint are delivered serially and in order, so a BatchHandler sees
// the same per-(source, destination) FIFO stream a Handler would.
//
//lint:consumes batch
type BatchHandler func(batch []Delivery)

// BatchNetwork is implemented by networks whose delivery goroutine can
// dequeue message batches per queue operation and hand them over in a
// single call, amortizing per-message wakeups and handoffs (docs/PERF.md).
type BatchNetwork interface {
	Network
	// AttachBatch is Attach with a batch handler.
	AttachBatch(nid types.NID, h BatchHandler) (Endpoint, error)
}
