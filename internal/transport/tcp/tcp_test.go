package tcp

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/types"
)

type sink struct {
	mu   sync.Mutex
	msgs [][]byte
	srcs []types.NID
}

func (s *sink) handler(src types.NID, msg []byte) {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	s.mu.Lock()
	s.msgs = append(s.msgs, cp)
	s.srcs = append(s.srcs, src)
	s.mu.Unlock()
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBasicSend(t *testing.T) {
	n := New()
	defer n.Close()
	var s sink
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, s.handler); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.count() == 1 })
	s.mu.Lock()
	defer s.mu.Unlock()
	if string(s.msgs[0]) != "over tcp" || s.srcs[0] != 1 {
		t.Errorf("got %q from %d", s.msgs[0], s.srcs[0])
	}
}

func TestOrderingOverOneConnection(t *testing.T) {
	n := New()
	defer n.Close()
	var s sink
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, s.handler); err != nil {
		t.Fatal(err)
	}
	const count = 500
	for i := 0; i < count; i++ {
		if err := a.Send(2, []byte(fmt.Sprintf("%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return s.count() == count })
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, m := range s.msgs {
		if want := fmt.Sprintf("%05d", i); string(m) != want {
			t.Fatalf("message %d = %q, want %q", i, m, want)
		}
	}
}

func TestLargeMessage(t *testing.T) {
	n := New()
	defer n.Close()
	var s sink
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, s.handler); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0x5A}, 4<<20)
	if err := a.Send(2, big); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.count() == 1 })
	s.mu.Lock()
	defer s.mu.Unlock()
	if !bytes.Equal(s.msgs[0], big) {
		t.Error("large message corrupted")
	}
}

func TestUnknownDestination(t *testing.T) {
	n := New()
	defer n.Close()
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(42, []byte("x")); !errors.Is(err, types.ErrProcessNotFound) {
		t.Errorf("send to unknown = %v", err)
	}
}

func TestDuplicateAttach(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.Attach(1, func(types.NID, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(1, func(types.NID, []byte) {}); err == nil {
		t.Error("duplicate attach accepted")
	}
}

func TestBidirectional(t *testing.T) {
	n := New()
	defer n.Close()
	var sa, sb sink
	a, err := n.Attach(1, sa.handler)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach(2, sb.handler)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sb.count() == 1 })
	if err := b.Send(1, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sa.count() == 1 })
}

func TestConcurrentSendersToOneNode(t *testing.T) {
	n := New()
	defer n.Close()
	var s sink
	if _, err := n.Attach(0, s.handler); err != nil {
		t.Fatal(err)
	}
	const senders, each = 4, 200
	var wg sync.WaitGroup
	for p := 1; p <= senders; p++ {
		ep, err := n.Attach(types.NID(p), func(types.NID, []byte) {})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := ep.Send(0, []byte{byte(p), byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	waitFor(t, func() bool { return s.count() == senders*each })
	// Per-source ordering.
	s.mu.Lock()
	defer s.mu.Unlock()
	next := map[byte]byte{}
	for _, m := range s.msgs {
		if m[1] != next[m[0]] {
			t.Fatalf("source %d out of order: got %d want %d", m[0], m[1], next[m[0]])
		}
		next[m[0]]++
	}
}

func TestSendAfterEndpointClose(t *testing.T) {
	n := New()
	defer n.Close()
	var s sink
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, s.handler); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.count() == 1 })
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("y")); !errors.Is(err, types.ErrClosed) {
		t.Errorf("send after close = %v", err)
	}
}

func TestNetworkCloseIdempotent(t *testing.T) {
	n := New()
	if _, err := n.Attach(1, func(types.NID, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, func(types.NID, []byte) {}); !errors.Is(err, types.ErrClosed) {
		t.Errorf("attach after close = %v", err)
	}
}

func TestRegisterExternalAddress(t *testing.T) {
	// Two separate Network registries, linked by Register — simulates two
	// OS processes.
	n1 := New()
	defer n1.Close()
	n2 := New()
	defer n2.Close()
	var s sink
	if _, err := n2.Attach(2, s.handler); err != nil {
		t.Fatal(err)
	}
	addr, ok := n2.lookup(2)
	if !ok {
		t.Fatal("no addr for node 2")
	}
	n1.Register(2, addr)
	a, err := n1.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("cross-registry")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.count() == 1 })
}

func TestStaticAddressing(t *testing.T) {
	// Two separate Network values with pinned listen addresses — the
	// cross-OS-process deployment (cmd/ptlnode) in miniature.
	const (
		addr1 = "127.0.0.1:19701"
		addr2 = "127.0.0.1:19702"
	)
	n1 := NewStatic(1, addr1, map[types.NID]string{2: addr2})
	defer n1.Close()
	n2 := NewStatic(2, addr2, map[types.NID]string{1: addr1})
	defer n2.Close()

	var s sink
	a, err := n1.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Attach(2, s.handler); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("static route")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.count() == 1 })
	s.mu.Lock()
	defer s.mu.Unlock()
	if string(s.msgs[0]) != "static route" || s.srcs[0] != 1 {
		t.Errorf("got %q from %d", s.msgs[0], s.srcs[0])
	}
}

func TestStaticListenConflict(t *testing.T) {
	const addr = "127.0.0.1:19711"
	n1 := NewStatic(1, addr, nil)
	defer n1.Close()
	if _, err := n1.Attach(1, func(types.NID, []byte) {}); err != nil {
		t.Fatal(err)
	}
	n2 := NewStatic(2, addr, nil)
	defer n2.Close()
	if _, err := n2.Attach(2, func(types.NID, []byte) {}); err == nil {
		t.Error("second listener on the same address accepted")
	}
}
