// Package tcp is the reference transport over kernel TCP/IP sockets —
// the counterpart of the Portals 3.0 reference implementation the paper
// shipped (§3: "we implemented a reference implementation over TCP/IP").
//
// The Portals API is connectionless; TCP is not. The mismatch is resolved
// the way the reference implementation did: connections are established
// lazily on first send to a destination and cached, entirely hidden from
// the layer above. Messages are length-prefixed frames; per-pair ordering
// follows from using one cached connection per directed pair.
package tcp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/metrics"
	"repro/internal/transport"
	"repro/internal/types"
)

// maxFrame bounds a single message; guards against corrupt length
// prefixes on the wire.
const maxFrame = 1 << 30

// Network is a TCP fabric with an in-process address registry. Nodes
// attached to the same Network discover each other automatically; for
// genuinely distributed runs, seed the registry with Register and pin
// the local listen address with SetListenAddr (or use NewStatic).
type Network struct {
	stats Stats

	mu     sync.Mutex
	addrs  map[types.NID]string    //lint:guardedby mu
	listen map[types.NID]string    //lint:guardedby mu
	eps    map[types.NID]*endpoint //lint:guardedby mu
	closed bool                    //lint:guardedby mu
}

// Stats counts fabric-level events; all fields are atomics.
type Stats struct {
	Sent      atomic.Int64 //lint:guardedby atomic  frames written to a socket
	Delivered atomic.Int64 //lint:guardedby atomic  frames handed to a handler
	Redials   atomic.Int64 //lint:guardedby atomic  cached connections dropped after a write error
}

// Stats exposes the fabric counters.
func (n *Network) Stats() *Stats { return &n.stats }

// RegisterMetrics exposes the fabric counters as CounterFunc views.
func (n *Network) RegisterMetrics(r *metrics.Registry, ls metrics.Labels) {
	st := &n.stats
	r.CounterFunc("portals_fabric_sent_total", "frames written to TCP sockets", ls, st.Sent.Load)
	r.CounterFunc("portals_fabric_delivered_total", "frames handed to a destination handler", ls, st.Delivered.Load)
	r.CounterFunc("portals_fabric_redials_total", "cached connections dropped after write errors", ls, st.Redials.Load)
}

// New creates a fabric whose nodes listen on ephemeral localhost ports.
func New() *Network {
	return &Network{
		addrs:  make(map[types.NID]string),
		listen: make(map[types.NID]string),
		eps:    make(map[types.NID]*endpoint),
	}
}

// NewStatic creates a fabric for a genuinely distributed run: the local
// node (whichever NID is attached in this OS process) listens at
// listenAddr, and peers maps every remote NID to its address.
func NewStatic(localNID types.NID, listenAddr string, peers map[types.NID]string) *Network {
	n := New()
	n.mu.Lock()
	n.listen[localNID] = listenAddr
	for nid, addr := range peers {
		n.addrs[nid] = addr
	}
	n.mu.Unlock()
	return n
}

// SetListenAddr pins the listen address used when nid attaches.
func (n *Network) SetListenAddr(nid types.NID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.listen[nid] = addr
}

// Register seeds the address of a node that lives in another OS process
// or on another machine.
func (n *Network) Register(nid types.NID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs[nid] = addr
}

// Attach starts a listener for nid and registers its address.
func (n *Network) Attach(nid types.NID, h transport.Handler) (transport.Endpoint, error) {
	if h == nil {
		return nil, fmt.Errorf("tcp: nil handler")
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, types.ErrClosed
	}
	if _, dup := n.eps[nid]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("tcp: nid %d already attached", nid)
	}
	listenAddr := n.listen[nid]
	n.mu.Unlock()
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}

	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen: %w", err)
	}
	ep := &endpoint{
		net:     n,
		nid:     nid,
		handler: h,
		ln:      ln,
		conns:   make(map[types.NID]*sendConn),
		inbound: make(map[net.Conn]struct{}),
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		ln.Close()
		return nil, types.ErrClosed
	}
	n.eps[nid] = ep
	n.addrs[nid] = ln.Addr().String()
	n.mu.Unlock()
	go ep.acceptLoop()
	return ep, nil
}

// Close tears down every endpoint.
func (n *Network) Close() error {
	n.mu.Lock()
	eps := make([]*endpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.closed = true
	n.eps = map[types.NID]*endpoint{}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

func (n *Network) lookup(nid types.NID) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	a, ok := n.addrs[nid]
	return a, ok
}

type endpoint struct {
	net     *Network
	nid     types.NID
	handler transport.Handler
	ln      net.Listener

	mu      sync.Mutex
	conns   map[types.NID]*sendConn //lint:guardedby mu
	inbound map[net.Conn]struct{}   //lint:guardedby mu
	closed  bool                    //lint:guardedby mu
	wg      sync.WaitGroup
}

// sendConn serializes writes on one outgoing connection. A write failure
// re-locks the endpoint (dropConn) while the connection's send lock is
// still held, so the send lock ranks above the endpoint lock.
//
//lint:lockrank sendConn.mu < endpoint.mu

// sendConn serializes writes on one outgoing connection.
type sendConn struct {
	mu   sync.Mutex
	conn net.Conn
}

func (ep *endpoint) LocalNID() types.NID { return ep.nid }

func (ep *endpoint) acceptLoop() {
	for {
		c, err := ep.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			c.Close()
			return
		}
		ep.inbound[c] = struct{}{}
		ep.wg.Add(1)
		ep.mu.Unlock()
		go func() {
			defer ep.wg.Done()
			ep.readLoop(c)
			ep.mu.Lock()
			delete(ep.inbound, c)
			ep.mu.Unlock()
		}()
	}
}

// readLoop handles one inbound connection: a hello frame naming the
// sender, then message frames.
func (ep *endpoint) readLoop(c net.Conn) {
	defer c.Close()
	src, err := readHello(c)
	if err != nil {
		return
	}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > maxFrame {
			return
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(c, msg); err != nil {
			return
		}
		if ep.isClosed() {
			return
		}
		ep.net.stats.Delivered.Add(1)
		ep.handler(src, msg)
	}
}

func (ep *endpoint) isClosed() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.closed
}

// Send frames msg onto the cached connection to dst, dialing on first use.
func (ep *endpoint) Send(dst types.NID, msg []byte) error {
	if len(msg) > maxFrame {
		return fmt.Errorf("tcp: message of %d bytes exceeds frame limit", len(msg))
	}
	sc, err := ep.connTo(dst)
	if err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(msg)))
	sc.mu.Lock()
	defer sc.mu.Unlock()
	//lint:ignore lockdiscipline sc.mu is this connection's write-serialization lock: it exists precisely to be held across the frame write so frames from concurrent senders never interleave; it guards nothing else and cannot participate in a cycle
	if _, err := sc.conn.Write(lenBuf[:]); err != nil {
		ep.dropConn(dst, sc)
		return fmt.Errorf("tcp: send to %d: %w", dst, err)
	}
	//lint:ignore lockdiscipline same write-serialization lock as above; the frame header and payload must be written atomically with respect to other senders
	if _, err := sc.conn.Write(msg); err != nil {
		ep.dropConn(dst, sc)
		return fmt.Errorf("tcp: send to %d: %w", dst, err)
	}
	ep.net.stats.Sent.Add(1)
	return nil
}

func (ep *endpoint) connTo(dst types.NID) (*sendConn, error) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil, types.ErrClosed
	}
	if sc, ok := ep.conns[dst]; ok {
		ep.mu.Unlock()
		return sc, nil
	}
	ep.mu.Unlock()

	addr, ok := ep.net.lookup(dst)
	if !ok {
		return nil, fmt.Errorf("tcp: %w: nid %d", types.ErrProcessNotFound, dst)
	}
	// Retry briefly: in a distributed launch peers come up staggered, and
	// the connectionless Portals API gives callers no handle to retry on.
	var c net.Conn
	var err error
	for deadline := time.Now().Add(10 * time.Second); ; {
		c, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) || ep.isClosed() {
			return nil, fmt.Errorf("tcp: dial %d: %w", dst, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err := writeHello(c, ep.nid); err != nil {
		c.Close()
		return nil, fmt.Errorf("tcp: hello to %d: %w", dst, err)
	}
	sc := &sendConn{conn: c}
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		c.Close()
		return nil, types.ErrClosed
	}
	if existing, ok := ep.conns[dst]; ok {
		ep.mu.Unlock()
		c.Close() // lost the dial race; reuse the winner
		return existing, nil
	}
	ep.conns[dst] = sc
	ep.mu.Unlock()
	return sc, nil
}

func (ep *endpoint) dropConn(dst types.NID, sc *sendConn) {
	ep.net.stats.Redials.Add(1)
	sc.conn.Close()
	ep.mu.Lock()
	if ep.conns[dst] == sc {
		delete(ep.conns, dst)
	}
	ep.mu.Unlock()
}

// Close stops the listener and closes every cached connection.
func (ep *endpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	conns := make([]*sendConn, 0, len(ep.conns))
	for _, sc := range ep.conns {
		conns = append(conns, sc)
	}
	ep.conns = map[types.NID]*sendConn{}
	in := make([]net.Conn, 0, len(ep.inbound))
	for c := range ep.inbound {
		in = append(in, c)
	}
	ep.mu.Unlock()

	ep.ln.Close()
	for _, sc := range conns {
		sc.conn.Close()
	}
	for _, c := range in {
		c.Close() // unblocks readLoops so wg.Wait below terminates
	}
	ep.net.mu.Lock()
	if ep.net.eps[ep.nid] == ep {
		delete(ep.net.eps, ep.nid)
		delete(ep.net.addrs, ep.nid)
	}
	ep.net.mu.Unlock()
	ep.wg.Wait()
	return nil
}

func writeHello(c net.Conn, nid types.NID) error {
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[0:], 0x50334843) // "P3HC"
	binary.BigEndian.PutUint32(buf[4:], uint32(nid))
	_, err := c.Write(buf[:])
	return err
}

func readHello(c net.Conn) (types.NID, error) {
	var buf [8]byte
	if _, err := io.ReadFull(c, buf[:]); err != nil {
		return 0, err
	}
	if binary.BigEndian.Uint32(buf[0:]) != 0x50334843 {
		return 0, fmt.Errorf("tcp: bad hello magic")
	}
	return types.NID(binary.BigEndian.Uint32(buf[4:])), nil
}
