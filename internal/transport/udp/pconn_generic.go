//go:build !(linux && amd64)

package udp

import "net"

// hasMmsgFastPath reports whether this build vectors syscalls.
const hasMmsgFastPath = false

// newPacketConn selects the portable one-syscall-per-datagram path on
// platforms without the mmsg fast path.
func newPacketConn(sock *net.UDPConn) packetConn { return &genericConn{sock: sock} }
