//go:build linux && amd64

package udp

import (
	"net"
	"syscall"
	"unsafe"
)

// mmsgConn is the linux/amd64 fast path: bursts vector through
// sendmmsg(2)/recvmmsg(2), so a burst of packets costs one syscall
// instead of one per datagram. The socket stays a stdlib *net.UDPConn —
// raw syscalls run through SyscallConn, so the runtime poller still
// parks the goroutine on EAGAIN and Close still unblocks pending reads.
//
// Method affinity: writeBatch is called only from the node's writer
// goroutine and readBatch only from its read loop, so each direction owns
// its scratch vectors without locking.
type mmsgConn struct {
	sock *net.UDPConn
	rc   syscall.RawConn
	gen  genericConn // portable fallback (non-IPv4 destinations)

	// Writer-goroutine scratch.
	wrHdrs []mmsghdr
	wrIovs []syscall.Iovec
	wrSAs  []syscall.RawSockaddrInet4

	// Reader-goroutine scratch.
	rdHdrs []mmsghdr
	rdIovs []syscall.Iovec
}

// hasMmsgFastPath reports whether this build vectors syscalls.
const hasMmsgFastPath = true

// sysSENDMMSG is sendmmsg(2) on linux/amd64. The frozen stdlib syscall
// table predates the syscall (it has SYS_RECVMMSG but not the send side).
const sysSENDMMSG = 307

// mmsghdr mirrors struct mmsghdr on linux/amd64: a msghdr plus the
// per-message byte count the kernel fills in.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

func newPacketConn(sock *net.UDPConn) packetConn {
	rc, err := sock.SyscallConn()
	if err != nil {
		return &genericConn{sock: sock}
	}
	return &mmsgConn{sock: sock, rc: rc, gen: genericConn{sock: sock}}
}

func htons(p int) uint16 { return uint16(p>>8) | uint16(p&0xff)<<8 }

func (c *mmsgConn) writeBatch(pkts []outPkt) (written, bursts int) {
	if len(c.wrHdrs) < len(pkts) {
		c.wrHdrs = make([]mmsghdr, len(pkts))
		c.wrIovs = make([]syscall.Iovec, len(pkts))
		c.wrSAs = make([]syscall.RawSockaddrInet4, len(pkts))
	}
	cnt := 0
	for i := range pkts {
		ip4 := pkts[i].addr.IP.To4()
		if ip4 == nil {
			// Rare non-IPv4 destination: portable single send.
			w, b := c.gen.writeBatch(pkts[i : i+1])
			written += w
			bursts += b
			continue
		}
		sa := &c.wrSAs[cnt]
		sa.Family = syscall.AF_INET
		sa.Port = htons(pkts[i].addr.Port)
		copy(sa.Addr[:], ip4)
		b := pkts[i].buf.Bytes()
		c.wrIovs[cnt] = syscall.Iovec{Base: &b[0], Len: uint64(len(b))}
		h := &c.wrHdrs[cnt]
		h.hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(sa)),
			Namelen: uint32(unsafe.Sizeof(*sa)),
			Iov:     &c.wrIovs[cnt],
			Iovlen:  1,
		}
		h.n = 0
		cnt++
	}
	for sent := 0; sent < cnt; {
		var r uintptr
		var errno syscall.Errno
		werr := c.rc.Write(func(fd uintptr) bool {
			r, _, errno = syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&c.wrHdrs[sent])), uintptr(cnt-sent), 0, 0, 0)
			return errno != syscall.EAGAIN
		})
		if werr != nil {
			return written, bursts // socket closed
		}
		bursts++
		switch errno {
		case 0:
			written += int(r)
			sent += int(r)
		case syscall.EINTR:
			// retry the same position
		default:
			// Per-datagram transmit error (e.g. ICMP-induced): skip one
			// packet — datagram loss the reliability layer repairs.
			sent++
		}
	}
	return written, bursts
}

func (c *mmsgConn) readBatch(bufs [][]byte, sizes []int) (int, error) {
	n := len(bufs)
	if len(c.rdHdrs) < n {
		c.rdHdrs = make([]mmsghdr, n)
		c.rdIovs = make([]syscall.Iovec, n)
	}
	for i := 0; i < n; i++ {
		c.rdIovs[i] = syscall.Iovec{Base: &bufs[i][0], Len: uint64(len(bufs[i]))}
		h := &c.rdHdrs[i]
		// The frame header names the sender, so the kernel is not asked
		// for source addresses (Name nil) — one copy-out fewer per packet.
		h.hdr = syscall.Msghdr{Iov: &c.rdIovs[i], Iovlen: 1}
		h.n = 0
	}
	for {
		var r uintptr
		var errno syscall.Errno
		rerr := c.rc.Read(func(fd uintptr) bool {
			r, _, errno = syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&c.rdHdrs[0])), uintptr(n), 0, 0, 0)
			return errno != syscall.EAGAIN
		})
		if rerr != nil {
			return 0, rerr // socket closed
		}
		switch errno {
		case 0:
			cnt := int(r)
			for i := 0; i < cnt; i++ {
				sizes[i] = int(c.rdHdrs[i].n)
			}
			return cnt, nil
		case syscall.EINTR:
			continue
		default:
			return 0, errno
		}
	}
}

func (c *mmsgConn) Close() error        { return c.sock.Close() }
func (c *mmsgConn) LocalAddr() net.Addr { return c.sock.LocalAddr() }
