package udp

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
)

// collect is a handler that copies and queues every delivered message.
type collect struct {
	mu   sync.Mutex
	msgs [][]byte
	srcs []types.NID
}

func (c *collect) handler(src types.NID, msg []byte) {
	m := make([]byte, len(msg))
	copy(m, msg)
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.srcs = append(c.srcs, src)
	c.mu.Unlock()
}

func (c *collect) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collect) waitFor(t *testing.T, n int, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for c.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d/%d messages delivered", c.count(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSmallMessageOverRealSockets(t *testing.T) {
	n := New()
	defer n.Close()
	var rx collect
	if _, err := n.Attach(2, rx.handler); err != nil {
		t.Fatal(err)
	}
	ep, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("hello over a real datagram socket")
	if err := ep.Send(2, want); err != nil {
		t.Fatal(err)
	}
	rx.waitFor(t, 1, 10*time.Second)
	if !bytes.Equal(rx.msgs[0], want) || rx.srcs[0] != 1 {
		t.Fatalf("got %q from %d", rx.msgs[0], rx.srcs[0])
	}
}

func TestOrderingManyMessages(t *testing.T) {
	n := New()
	defer n.Close()
	var rx collect
	if _, err := n.Attach(2, rx.handler); err != nil {
		t.Fatal(err)
	}
	ep, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	const count = 500
	for i := 0; i < count; i++ {
		if err := ep.Send(2, []byte(fmt.Sprintf("msg-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rx.waitFor(t, count, 30*time.Second)
	for i := 0; i < count; i++ {
		if want := fmt.Sprintf("msg-%04d", i); string(rx.msgs[i]) != want {
			t.Fatalf("position %d: got %q want %q", i, rx.msgs[i], want)
		}
	}
}

func TestLargeMessageFragmentsAndRendezvous(t *testing.T) {
	n := New()
	defer n.Close()
	var rx collect
	if _, err := n.Attach(2, rx.handler); err != nil {
		t.Fatal(err)
	}
	ep, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	// 200 KB: far beyond both the datagram MTU (fragmenting) and the
	// 32 KB eager threshold (rendezvous RTS/CTS round trip first).
	big := make([]byte, 200*1024)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := ep.Send(2, big); err != nil {
		t.Fatal(err)
	}
	rx.waitFor(t, 1, 30*time.Second)
	if sha256.Sum256(rx.msgs[0]) != sha256.Sum256(big) {
		t.Fatal("large message corrupted in flight")
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	n := New()
	defer n.Close()
	var rx1, rx2 collect
	ep1, err := n.Attach(1, rx1.handler)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := n.Attach(2, rx2.handler)
	if err != nil {
		t.Fatal(err)
	}
	const each = 100
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < each; i++ {
			ep1.Send(2, []byte(fmt.Sprintf("a->b %d", i)))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < each; i++ {
			ep2.Send(1, []byte(fmt.Sprintf("b->a %d", i)))
		}
	}()
	wg.Wait()
	rx1.waitFor(t, each, 30*time.Second)
	rx2.waitFor(t, each, 30*time.Second)
}

func TestManyPeersOneSocketEach(t *testing.T) {
	n := New()
	defer n.Close()
	const peers = 8
	var rx collect
	if _, err := n.Attach(100, rx.handler); err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= peers; p++ {
		ep, err := n.Attach(types.NID(p), func(types.NID, []byte) {})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := ep.Send(100, []byte(fmt.Sprintf("peer-%d-msg-%d", p, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	rx.waitFor(t, peers*20, 30*time.Second)
	// Per-source ordering must hold even with sources interleaved.
	next := map[types.NID]int{}
	for i, src := range rx.srcs {
		want := fmt.Sprintf("peer-%d-msg-%d", src, next[src])
		if string(rx.msgs[i]) != want {
			t.Fatalf("from %d: got %q want %q", src, rx.msgs[i], want)
		}
		next[src]++
	}
}

func TestBatchDelivery(t *testing.T) {
	n := New()
	defer n.Close()
	var mu sync.Mutex
	var got []string
	batches := 0
	_, err := n.AttachBatch(2, func(batch []transport.Delivery) {
		mu.Lock()
		batches++
		for i := range batch {
			got = append(got, string(batch[i].Msg))
			if batch[i].Buf == nil {
				mu.Unlock()
				t.Error("delivery without pooled buffer")
				mu.Lock()
			}
			batch[i].Release()
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	const count = 300
	for i := 0; i < count; i++ {
		if err := ep.Send(2, []byte(fmt.Sprintf("b-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		done := len(got) == count
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("timeout: %d/%d delivered", len(got), count)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, m := range got {
		if want := fmt.Sprintf("b-%04d", i); m != want {
			t.Fatalf("position %d: got %q want %q", i, m, want)
		}
	}
	if batches >= count {
		t.Logf("note: no burst coalescing observed (%d batches / %d msgs)", batches, count)
	}
}

func TestWriterCoalescesBursts(t *testing.T) {
	n := New()
	defer n.Close()
	var rx collect
	if _, err := n.Attach(2, rx.handler); err != nil {
		t.Fatal(err)
	}
	ep, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	const count = 400
	for i := 0; i < count; i++ {
		if err := ep.Send(2, bytes.Repeat([]byte{byte(i)}, 512)); err != nil {
			t.Fatal(err)
		}
	}
	rx.waitFor(t, count, 30*time.Second)
	sent, bursts := n.Stats().Sent.Load(), n.Stats().SendBursts.Load()
	if sent < count {
		t.Fatalf("sent %d datagrams for %d messages", sent, count)
	}
	// The mmsg fast path must show real coalescing under this firehose;
	// the portable path degenerates to one burst per datagram.
	if hasMmsgFastPath && bursts >= sent {
		t.Errorf("no syscall coalescing: %d bursts for %d datagrams", bursts, sent)
	}
	t.Logf("sent=%d bursts=%d (%.1f pkts/syscall)", sent, bursts, float64(sent)/float64(bursts))
}

func TestBadFramesDropped(t *testing.T) {
	n := New()
	defer n.Close()
	var rx collect
	if _, err := n.Attach(2, rx.handler); err != nil {
		t.Fatal(err)
	}
	addr, ok := n.Addr(2)
	if !ok {
		t.Fatal("no addr for nid 2")
	}
	raw, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.Write([]byte{1, 2, 3})                             // short frame
	raw.Write([]byte{0xFF, 0xFF, 1, 0, 0, 0, 0, 9, 0xAA})  // bad magic
	raw.Write([]byte{0x50, 0x33, 99, 0, 0, 0, 0, 9, 0xAA}) // bad version
	deadline := time.Now().Add(5 * time.Second)
	for n.Stats().BadFrames.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("bad frames counted: %d/3", n.Stats().BadFrames.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if rx.count() != 0 {
		t.Fatalf("%d messages delivered from garbage frames", rx.count())
	}
}

func TestUnknownDestinationFailsFast(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.Attach(1, func(types.NID, []byte) {}); err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	nd := n.nodes[1]
	n.mu.Unlock()
	if err := nd.SendPacket(42, []byte("x")); err == nil {
		t.Fatal("send to unregistered NID succeeded")
	}
	if n.Stats().UnknownPeers.Load() == 0 {
		t.Fatal("unknown-peer drop not counted")
	}
}

func TestCrossNetworkViaRegistry(t *testing.T) {
	// Two Network instances simulate two OS processes: each binds its own
	// socket and learns the other's address only through Register — the
	// path cmd/ptlnode uses across real machines.
	na := New()
	defer na.Close()
	nb := New()
	defer nb.Close()
	var rx collect
	if _, err := nb.Attach(2, rx.handler); err != nil {
		t.Fatal(err)
	}
	epA, err := na.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	addrB, _ := nb.Addr(2)
	addrA, _ := na.Addr(1)
	if err := na.Register(2, addrB); err != nil {
		t.Fatal(err)
	}
	if err := nb.Register(1, addrA); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := epA.Send(2, []byte(fmt.Sprintf("x-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rx.waitFor(t, 50, 20*time.Second)
	for i := 0; i < 50; i++ {
		if want := fmt.Sprintf("x-%02d", i); string(rx.msgs[i]) != want {
			t.Fatalf("position %d: got %q want %q", i, rx.msgs[i], want)
		}
	}
}

func TestCloseUnblocksAndDetaches(t *testing.T) {
	n := New()
	var rx collect
	ep, err := n.Attach(1, rx.handler)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		ep.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung (read loop not unblocked)")
	}
	if _, err := n.Attach(1, rx.handler); err != nil {
		t.Fatalf("re-attach after close: %v", err)
	}
	n.Close()
}
