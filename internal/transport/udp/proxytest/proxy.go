// Package proxytest provides a lossy UDP relay for exercising the
// reliability engine over real sockets: a Relay binds its own port,
// forwards every datagram to one fixed target, and misbehaves on the way
// — dropping, duplicating, reordering, and delaying packets under
// configurable rates that can change at runtime (for shrink-then-regrow
// window experiments).
//
// Interposition is per direction: because the udp transport identifies
// peers by the frame header rather than the source address, pointing A's
// registry entry for B at a Relay (and B's entry for A at another) routes
// each direction's traffic through its own fault injector with no address
// rewriting at all.
package proxytest

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the fault rates. All probabilities are in [0, 1].
type Config struct {
	// Drop is the probability a datagram vanishes.
	Drop float64
	// Dup is the probability a datagram is forwarded twice.
	Dup float64
	// Reorder is the probability a datagram is held back and released
	// after the next one (a distance-1 swap — the classic mild
	// reordering a multipath network produces). A held datagram is
	// flushed after holdMax if nothing follows it.
	Reorder float64
	// Delay is added to every forwarded datagram; Jitter adds a uniform
	// random extra in [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration
	// Seed makes the fault sequence reproducible; 0 seeds from the clock.
	Seed int64
}

// Stats counts relay activity; all fields are atomics.
type Stats struct {
	Forwarded  atomic.Int64
	Dropped    atomic.Int64
	Duplicated atomic.Int64
	Reordered  atomic.Int64
}

// holdMax bounds how long a reorder-held datagram waits for a successor.
const holdMax = 10 * time.Millisecond

// Relay is a unidirectional lossy UDP forwarder.
type Relay struct {
	in    *net.UDPConn
	dst   *net.UDPAddr
	stats Stats

	mu  sync.Mutex
	cfg Config // guarded by mu; SetConfig swaps it at runtime

	done chan struct{}
	wg   sync.WaitGroup
}

// New starts a relay forwarding to target, listening on an ephemeral
// localhost port (see Addr).
func New(target string, cfg Config) (*Relay, error) {
	dst, err := net.ResolveUDPAddr("udp", target)
	if err != nil {
		return nil, fmt.Errorf("proxytest: target: %w", err)
	}
	in, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("proxytest: bind: %w", err)
	}
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
	r := &Relay{in: in, dst: dst, cfg: cfg, done: make(chan struct{})}
	r.wg.Add(1)
	go r.run()
	return r, nil
}

// Addr is the relay's listening address — register it as the target
// node's address to interpose the relay.
func (r *Relay) Addr() string { return r.in.LocalAddr().String() }

// Stats exposes the relay counters.
func (r *Relay) Stats() *Stats { return &r.stats }

// SetConfig replaces the fault configuration at runtime (the Seed field
// is ignored; the running sequence continues).
func (r *Relay) SetConfig(cfg Config) {
	r.mu.Lock()
	cfg.Seed = r.cfg.Seed
	r.cfg = cfg
	r.mu.Unlock()
}

func (r *Relay) config() Config {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg
}

// Close stops the relay.
func (r *Relay) Close() {
	select {
	case <-r.done:
		return
	default:
	}
	close(r.done)
	r.in.Close()
	r.wg.Wait()
}

func (r *Relay) run() {
	defer r.wg.Done()
	rng := rand.New(rand.NewSource(r.config().Seed))
	buf := make([]byte, 65536)
	var held []byte // reorder hold slot
	heldAt := time.Time{}
	for {
		if held != nil {
			// A datagram is held for the swap: wait bounded time for a
			// successor, then flush it so reordering never becomes loss.
			r.in.SetReadDeadline(heldAt.Add(holdMax))
		} else {
			r.in.SetReadDeadline(time.Time{})
		}
		n, _, err := r.in.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				r.forward(held, r.config())
				held = nil
				continue
			}
			if held != nil {
				r.forward(held, r.config())
			}
			return // socket closed
		}
		cfg := r.config()
		pkt := buf[:n]
		if rng.Float64() < cfg.Drop {
			r.stats.Dropped.Add(1)
			continue
		}
		if held == nil && rng.Float64() < cfg.Reorder {
			held = append([]byte(nil), pkt...)
			heldAt = time.Now()
			r.stats.Reordered.Add(1)
			continue
		}
		r.forward(pkt, cfg)
		if rng.Float64() < cfg.Dup {
			r.stats.Duplicated.Add(1)
			r.forward(pkt, cfg)
		}
		if held != nil {
			// The swap: the successor has gone ahead; release the held
			// datagram behind it.
			r.forward(held, cfg)
			held = nil
		}
	}
}

// forward transmits one datagram toward the target, applying delay/jitter.
func (r *Relay) forward(pkt []byte, cfg Config) {
	if pkt == nil {
		return
	}
	r.stats.Forwarded.Add(1)
	d := cfg.Delay
	if cfg.Jitter > 0 {
		// Jitter pulls from the clock, not the fault rng: forward runs on
		// timer goroutines too, and fault reproducibility only needs the
		// drop/dup/reorder sequence stable.
		d += time.Duration(time.Now().UnixNano() % int64(cfg.Jitter))
	}
	if d <= 0 {
		_, _ = r.in.WriteToUDP(pkt, r.dst)
		return
	}
	cp := append([]byte(nil), pkt...)
	t := time.AfterFunc(d, func() {
		_, _ = r.in.WriteToUDP(cp, r.dst)
	})
	_ = t
}
