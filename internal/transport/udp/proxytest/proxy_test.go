package proxytest

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// sink collects datagrams on a local UDP socket.
type sink struct {
	sock *net.UDPConn
	mu   sync.Mutex
	pkts [][]byte
}

func newSink(t *testing.T) *sink {
	t.Helper()
	sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	s := &sink{sock: sock}
	t.Cleanup(func() { sock.Close() })
	go func() {
		buf := make([]byte, 65536)
		for {
			n, _, err := sock.ReadFromUDP(buf)
			if err != nil {
				return
			}
			cp := append([]byte(nil), buf[:n]...)
			s.mu.Lock()
			s.pkts = append(s.pkts, cp)
			s.mu.Unlock()
		}
	}()
	return s
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pkts)
}

func (s *sink) addr() string { return s.sock.LocalAddr().String() }

func send(t *testing.T, addr string, pkts int) {
	t.Helper()
	c, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < pkts; i++ {
		if _, err := c.Write([]byte(fmt.Sprintf("pkt-%06d", i))); err != nil {
			t.Fatal(err)
		}
		if i%64 == 63 {
			time.Sleep(time.Millisecond) // don't overrun loopback buffers
		}
	}
}

func waitCount(t *testing.T, s *sink, atLeast int, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for s.count() < atLeast {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d/%d datagrams arrived", s.count(), atLeast)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCleanRelayForwardsEverything(t *testing.T) {
	s := newSink(t)
	r, err := New(s.addr(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	send(t, r.Addr(), 200)
	waitCount(t, s, 200, 10*time.Second)
	if got := r.Stats().Forwarded.Load(); got != 200 {
		t.Fatalf("forwarded = %d, want 200", got)
	}
}

func TestDropRateRoughlyHonored(t *testing.T) {
	s := newSink(t)
	r, err := New(s.addr(), Config{Drop: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	send(t, r.Addr(), 1000)
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Dropped.Load()+r.Stats().Forwarded.Load() < 1000 {
		if time.Now().After(deadline) {
			t.Fatalf("relay processed %d/1000",
				r.Stats().Dropped.Load()+r.Stats().Forwarded.Load())
		}
		time.Sleep(time.Millisecond)
	}
	dropped := r.Stats().Dropped.Load()
	if dropped < 350 || dropped > 650 {
		t.Fatalf("dropped %d of 1000 at rate 0.5", dropped)
	}
}

func TestDuplicationDeliversExtras(t *testing.T) {
	s := newSink(t)
	r, err := New(s.addr(), Config{Dup: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	send(t, r.Addr(), 400)
	waitCount(t, s, 500, 10*time.Second) // ~600 expected with dup 0.5
	if r.Stats().Duplicated.Load() == 0 {
		t.Fatal("no duplicates produced")
	}
}

func TestReorderSwapsNeighbors(t *testing.T) {
	s := newSink(t)
	r, err := New(s.addr(), Config{Reorder: 0.4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	send(t, r.Addr(), 300)
	waitCount(t, s, 300, 10*time.Second)
	if r.Stats().Reordered.Load() == 0 {
		t.Fatal("no reordering produced")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	swaps := 0
	for i := 1; i < len(s.pkts); i++ {
		if string(s.pkts[i]) < string(s.pkts[i-1]) {
			swaps++
		}
	}
	if swaps == 0 {
		t.Fatal("packets arrived fully ordered despite reorder=0.4")
	}
}

func TestHeldPacketFlushedWhenTrafficStops(t *testing.T) {
	s := newSink(t)
	r, err := New(s.addr(), Config{Reorder: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	send(t, r.Addr(), 1) // held with no successor: the holdMax flush must save it
	waitCount(t, s, 1, 5*time.Second)
}

func TestSetConfigSwitchesFaultsAtRuntime(t *testing.T) {
	s := newSink(t)
	r, err := New(s.addr(), Config{Drop: 1.0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	send(t, r.Addr(), 50)
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Dropped.Load() < 50 {
		if time.Now().After(deadline) {
			t.Fatalf("dropped %d/50", r.Stats().Dropped.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if s.count() != 0 {
		t.Fatalf("%d datagrams leaked through drop=1.0", s.count())
	}
	r.SetConfig(Config{})
	send(t, r.Addr(), 50)
	waitCount(t, s, 50, 10*time.Second)
}

func TestDelayAddsLatency(t *testing.T) {
	s := newSink(t)
	r, err := New(s.addr(), Config{Delay: 20 * time.Millisecond, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	start := time.Now()
	send(t, r.Addr(), 1)
	waitCount(t, s, 1, 5*time.Second)
	if e := time.Since(start); e < 15*time.Millisecond {
		t.Fatalf("datagram arrived after %v, want >= ~20ms", e)
	}
}
