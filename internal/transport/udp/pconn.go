package udp

import "net"

// packetConn abstracts the batched datagram syscalls over one socket.
// writeBatch transmits up to maxWriteBurst framed packets, best-effort
// (an unsendable packet is dropped — datagram loss the reliability layer
// repairs), returning datagrams written and syscall bursts used.
// readBatch blocks for at least one datagram, drains as many as are ready
// into bufs (recording lengths in sizes), and returns the count; it
// returns an error only when the socket is closed.
//
// The portable implementation (pconn_generic.go) is a WriteToUDP loop and
// a single blocking ReadFromUDP; linux/amd64 (pconn_linux.go) vectors
// both through sendmmsg/recvmmsg so a burst costs one syscall.
type packetConn interface {
	writeBatch(pkts []outPkt) (written, bursts int)
	readBatch(bufs [][]byte, sizes []int) (int, error)
	Close() error
	LocalAddr() net.Addr
}

// genericConn is the portable packetConn: one syscall per datagram.
type genericConn struct {
	sock *net.UDPConn
}

func (c *genericConn) writeBatch(pkts []outPkt) (written, bursts int) {
	for i := range pkts {
		if _, err := c.sock.WriteToUDP(pkts[i].buf.Bytes(), pkts[i].addr); err == nil {
			written++
		}
		bursts++
	}
	return written, bursts
}

func (c *genericConn) readBatch(bufs [][]byte, sizes []int) (int, error) {
	n, _, err := c.sock.ReadFromUDP(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	return 1, nil
}

func (c *genericConn) Close() error        { return c.sock.Close() }
func (c *genericConn) LocalAddr() net.Addr { return c.sock.LocalAddr() }
