package udp

// The simnet rtscts stress matrix, ported onto real sockets: two Network
// instances (two "processes") exchange traffic through per-direction
// lossy UDP relays (proxytest) that drop, duplicate, reorder, and delay
// datagrams. Beyond correctness under faults, these assert the
// self-tuning claims end to end: the RTO converges to the measured path
// RTT, dup-acks fire fast retransmit, and the window shrinks under loss
// and regrows when the path heals.

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"
	"time"

	"repro/internal/rtscts"
	"repro/internal/transport"
	"repro/internal/transport/udp/proxytest"
	"repro/internal/types"
)

// lossyPair wires two single-node Networks through per-direction relays.
type lossyPair struct {
	na, nb           *Network
	relayAB, relayBA *proxytest.Relay
	epA, epB         transport.Endpoint
	connA            *rtscts.Conn
	rxA, rxB         *collect
}

func newLossyPair(t *testing.T, pcfg proxytest.Config, rel rtscts.Config) *lossyPair {
	t.Helper()
	p := &lossyPair{
		na:  NewWithConfig(Config{Reliability: rel}),
		nb:  NewWithConfig(Config{Reliability: rel}),
		rxA: &collect{},
		rxB: &collect{},
	}
	t.Cleanup(func() { p.na.Close(); p.nb.Close() })
	var err error
	if p.epB, err = p.nb.Attach(2, p.rxB.handler); err != nil {
		t.Fatal(err)
	}
	if p.epA, err = p.na.Attach(1, p.rxA.handler); err != nil {
		t.Fatal(err)
	}
	p.connA = p.epA.(*rtscts.Conn)
	addrA, _ := p.na.Addr(1)
	addrB, _ := p.nb.Addr(2)
	if p.relayAB, err = proxytest.New(addrB, pcfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.relayAB.Close)
	if p.relayBA, err = proxytest.New(addrA, pcfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.relayBA.Close)
	if err := p.na.Register(2, p.relayAB.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := p.nb.Register(1, p.relayBA.Addr()); err != nil {
		t.Fatal(err)
	}
	return p
}

// stressRel is the reliability tuning the matrix runs under: a window
// small enough to see adaptation, an RTO seed far above the loopback RTT
// (convergence must win, not the seed), and a tight floor.
func stressRel() rtscts.Config {
	return rtscts.Config{Window: 16, RTO: 50 * time.Millisecond, RTOMin: 2 * time.Millisecond}
}

func sendOrdered(t *testing.T, ep transport.Endpoint, dst types.NID, count int, tag string) {
	t.Helper()
	for i := 0; i < count; i++ {
		if err := ep.Send(dst, []byte(fmt.Sprintf("%s-%05d", tag, i))); err != nil {
			t.Fatal(err)
		}
	}
}

func assertOrdered(t *testing.T, rx *collect, count int, tag string) {
	t.Helper()
	rx.mu.Lock()
	defer rx.mu.Unlock()
	for i := 0; i < count; i++ {
		if want := fmt.Sprintf("%s-%05d", tag, i); string(rx.msgs[i]) != want {
			t.Fatalf("position %d: got %q want %q", i, rx.msgs[i], want)
		}
	}
}

func TestStressRecoveryFromLoss(t *testing.T) {
	p := newLossyPair(t, proxytest.Config{Drop: 0.05, Seed: 101}, stressRel())
	const count = 300
	sendOrdered(t, p.epA, 2, count, "loss")
	p.rxB.waitFor(t, count, 60*time.Second)
	assertOrdered(t, p.rxB, count, "loss")
	if p.connA.Stats().Retransmits.Load() == 0 {
		t.Error("no retransmissions under 5% loss — relay not in the path?")
	}
}

func TestStressLowLossWithReorderAdaptsRTO(t *testing.T) {
	p := newLossyPair(t, proxytest.Config{Drop: 0.01, Reorder: 0.10, Seed: 202}, stressRel())
	const count = 400
	sendOrdered(t, p.epA, 2, count, "r1")
	p.rxB.waitFor(t, count, 60*time.Second)
	assertOrdered(t, p.rxB, count, "r1")
	if p.connA.Stats().RTTSamples.Load() == 0 {
		t.Fatal("no RTT samples under 1% loss")
	}
	st, ok := p.connA.Peer(2)
	if !ok {
		t.Fatal("no peer state")
	}
	if st.RTO >= 50*time.Millisecond {
		t.Errorf("RTO = %v never converged below the 50ms seed", st.RTO)
	}
}

func TestStressHighLossWithReorderFiresFastRetransmit(t *testing.T) {
	p := newLossyPair(t, proxytest.Config{Drop: 0.05, Reorder: 0.10, Seed: 303}, stressRel())
	const count = 400
	sendOrdered(t, p.epA, 2, count, "r5")
	p.rxB.waitFor(t, count, 90*time.Second)
	assertOrdered(t, p.rxB, count, "r5")
	if p.connA.Stats().FastRetransmits.Load() == 0 {
		t.Error("fast retransmit never fired under 5% loss with a full pipe")
	}
}

func TestStressDuplicationAndReorder(t *testing.T) {
	p := newLossyPair(t, proxytest.Config{Dup: 0.05, Reorder: 0.10, Seed: 404}, stressRel())
	const count = 300
	sendOrdered(t, p.epA, 2, count, "dup")
	p.rxB.waitFor(t, count, 60*time.Second)
	assertOrdered(t, p.rxB, count, "dup")
	if got := p.rxB.count(); got != count {
		t.Fatalf("delivered %d, want exactly %d (duplicates leaked?)", got, count)
	}
}

func TestStressLargeTransferUnderAllFaults(t *testing.T) {
	p := newLossyPair(t, proxytest.Config{
		Drop: 0.03, Dup: 0.03, Reorder: 0.03,
		Delay: time.Millisecond, Jitter: 500 * time.Microsecond, Seed: 505,
	}, stressRel())
	big := make([]byte, 300*1024)
	for i := range big {
		big[i] = byte(i*2654435761 ^ i>>8)
	}
	if err := p.epA.Send(2, big); err != nil {
		t.Fatal(err)
	}
	p.rxB.waitFor(t, 1, 120*time.Second)
	if sha256.Sum256(p.rxB.msgs[0]) != sha256.Sum256(big) {
		t.Fatal("large message corrupted crossing the faulty path")
	}
}

func TestStressBidirectionalUnderLoss(t *testing.T) {
	p := newLossyPair(t, proxytest.Config{Drop: 0.03, Seed: 606}, stressRel())
	const each = 150
	done := make(chan struct{})
	go func() {
		sendOrdered(t, p.epA, 2, each, "ab")
		close(done)
	}()
	sendOrdered(t, p.epB, 1, each, "ba")
	<-done
	p.rxB.waitFor(t, each, 60*time.Second)
	p.rxA.waitFor(t, each, 60*time.Second)
	assertOrdered(t, p.rxB, each, "ab")
	assertOrdered(t, p.rxA, each, "ba")
}

func TestStressWindowShrinksThenRegrows(t *testing.T) {
	p := newLossyPair(t, proxytest.Config{Seed: 707}, stressRel())
	const ceiling = 16

	// Phase 1: clean path. The window sits at the ceiling.
	sendOrdered(t, p.epA, 2, 100, "p1")
	p.rxB.waitFor(t, 100, 30*time.Second)
	if st, _ := p.connA.Peer(2); st.Window != ceiling {
		t.Fatalf("phase 1: window = %d, want ceiling %d", st.Window, ceiling)
	}

	// Phase 2: 25% loss. Retransmissions must shrink the window.
	p.relayAB.SetConfig(proxytest.Config{Drop: 0.25})
	delivered := 100
	deadline := time.Now().Add(60 * time.Second)
	shrunk := 0
	for {
		sendOrdered(t, p.epA, 2, 50, fmt.Sprintf("p2x%d", delivered))
		delivered += 50
		p.rxB.waitFor(t, delivered, 60*time.Second)
		if st, _ := p.connA.Peer(2); st.Window < ceiling {
			shrunk = st.Window
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("window never shrank under 25% loss")
		}
	}
	if p.connA.Stats().Retransmits.Load() == 0 {
		t.Fatal("window shrank without retransmissions?")
	}
	t.Logf("phase 2: window shrank to %d (retransmits=%d fast=%d)",
		shrunk, p.connA.Stats().Retransmits.Load(), p.connA.Stats().FastRetransmits.Load())

	// Phase 3: path heals. Clean ack runs must regrow the window to the
	// ceiling (+1 per acked window — additive increase).
	p.relayAB.SetConfig(proxytest.Config{})
	deadline = time.Now().Add(60 * time.Second)
	for {
		sendOrdered(t, p.epA, 2, 50, fmt.Sprintf("p3x%d", delivered))
		delivered += 50
		p.rxB.waitFor(t, delivered, 60*time.Second)
		if st, _ := p.connA.Peer(2); st.Window == ceiling {
			break
		}
		if time.Now().After(deadline) {
			st, _ := p.connA.Peer(2)
			t.Fatalf("window stuck at %d, never regrew to %d", st.Window, ceiling)
		}
	}
}

func TestStressRTOConvergesToPathRTT(t *testing.T) {
	// 5 ms each way through the relays -> ~10 ms RTT. The RTO seeds at
	// 200 ms; convergence must pull it to RTT scale.
	rel := rtscts.Config{Window: 16, RTO: 200 * time.Millisecond, RTOMin: 2 * time.Millisecond}
	p := newLossyPair(t, proxytest.Config{Delay: 5 * time.Millisecond, Seed: 808}, rel)
	const count = 150
	sendOrdered(t, p.epA, 2, count, "rtt")
	p.rxB.waitFor(t, count, 60*time.Second)
	st, ok := p.connA.Peer(2)
	if !ok {
		t.Fatal("no peer state")
	}
	if st.SRTT < 8*time.Millisecond || st.SRTT > 80*time.Millisecond {
		t.Errorf("SRTT = %v, want on the order of the 10ms path RTT", st.SRTT)
	}
	if st.RTO >= 200*time.Millisecond {
		t.Errorf("RTO = %v never left the 200ms seed", st.RTO)
	}
	if st.RTO < 10*time.Millisecond {
		t.Errorf("RTO = %v below the path RTT — spurious retransmit territory", st.RTO)
	}
	t.Logf("SRTT=%v RTTVAR=%v RTO=%v samples=%d",
		st.SRTT, st.RTTVar, st.RTO, p.connA.Stats().RTTSamples.Load())
}

var _ = bytes.Equal // keep bytes imported if asserts change
