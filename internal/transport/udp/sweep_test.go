package udp

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/transport/udp/proxytest"
)

// TestLossSweepReport runs the same fixed workload at increasing drop
// rates and logs the engine's adaptation — the measured table in
// docs/PERF.md §8 comes from this test (`go test -run TestLossSweep -v`).
// It asserts only the qualitative shape (everything delivered in order,
// loss costs retransmits, the window stays within its configured
// bounds), so scheduler noise cannot flake it.
func TestLossSweepReport(t *testing.T) {
	if testing.Short() {
		t.Skip("loss sweep skipped in -short")
	}
	const count = 400
	for _, drop := range []float64{0, 0.01, 0.05} {
		p := newLossyPair(t, proxytest.Config{Drop: drop, Seed: int64(900 + drop*100)}, stressRel())
		start := time.Now()
		sendOrdered(t, p.epA, 2, count, fmt.Sprintf("sw%d", int(drop*100)))
		p.rxB.waitFor(t, count, 120*time.Second)
		elapsed := time.Since(start)
		st, ok := p.connA.Peer(2)
		if !ok {
			t.Fatalf("drop=%.0f%%: no peer state", drop*100)
		}
		retx := p.connA.Stats().Retransmits.Load()
		fast := p.connA.Stats().FastRetransmits.Load()
		t.Logf("drop=%.0f%%: %d msgs in %v (%.0f msg/s)  srtt=%v rto=%v window=%d retx=%d fast=%d",
			drop*100, count, elapsed.Round(time.Millisecond),
			float64(count)/elapsed.Seconds(), st.SRTT.Round(10*time.Microsecond),
			st.RTO.Round(10*time.Microsecond), st.Window, retx, fast)
		if drop > 0 && retx == 0 {
			t.Errorf("drop=%.0f%%: no retransmissions — relay not in the path?", drop*100)
		}
		if st.Window < 2 || st.Window > 16 {
			t.Errorf("drop=%.0f%%: window %d outside its [2, 16] bounds", drop*100, st.Window)
		}
		assertOrdered(t, p.rxB, count, fmt.Sprintf("sw%d", int(drop*100)))
		p.na.Close()
		p.nb.Close()
	}
}
