// Package udp carries the rtscts reliability engine over real UDP
// sockets — the deployable form of the paper's connectionless transport
// thesis (§4.1). Where the tcp package reintroduces per-connection kernel
// state (the exact scaling liability the paper argues against), a udp node
// owns ONE socket regardless of peer count: per-peer state is only the
// rtscts sliding window, created lazily on first traffic and bounded by
// the protocol, never by kernel connection tables. There is no dial, no
// accept, no handshake — a datagram's frame header names the sending node
// and the reliability layer does the rest.
//
// The syscall layer is batched: senders enqueue framed packets on a
// per-node queue drained by one writer goroutine that coalesces bursts
// into multi-packet writes behind the packetConn interface (a portable
// WriteToUDP loop, with a sendmmsg/recvmmsg fast path on linux/amd64 —
// see pconn_linux.go). The read loop drains packets in batches and feeds
// them to rtscts, whose completed messages accumulate and flush as one
// transport.BatchHandler call per burst.
package udp

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/bufpool"
	"repro/internal/obs/metrics"
	"repro/internal/rcu"
	"repro/internal/rtscts"
	"repro/internal/transport"
	"repro/internal/types"
)

// Frame header: every datagram opens with 8 bytes naming the protocol and
// the sending node, so the receive path identifies the peer from the frame
// itself — no reverse lookup of source addresses, and the batched receive
// syscall does not even ask the kernel for them.
//
//	[0:2] magic 0x5033 ("P3"), big endian
//	[2]   version (1)
//	[3]   reserved (0)
//	[4:8] source NID, big endian
const (
	frameMagic      = 0x5033
	frameVersion    = 1
	frameHeaderSize = 8
)

// Config tunes the fabric.
type Config struct {
	// Reliability tunes the rtscts engine (window ceiling, RTO seed, …).
	// The zero value selects rtscts defaults.
	Reliability rtscts.Config
	// MTU is the largest UDP datagram sent, frame header included.
	// Zero selects 8192: large enough to amortize syscalls on loopback,
	// small enough for default socket buffers.
	MTU int
	// ReadBatch is the number of datagrams drained per receive burst.
	// Zero selects 32.
	ReadBatch int
	// SendQueue caps the per-node async send queue in packets; beyond it
	// sends tail-drop (the reliability layer retransmits). Zero selects
	// 1024.
	SendQueue int
}

func (c Config) withDefaults() Config {
	if c.MTU <= 0 {
		c.MTU = 8192
	}
	if c.ReadBatch <= 0 {
		c.ReadBatch = 32
	}
	if c.SendQueue <= 0 {
		c.SendQueue = 1024
	}
	return c
}

// Stats counts fabric-level events; all fields are atomics.
type Stats struct {
	Sent         atomic.Int64 //lint:guardedby atomic  datagrams written
	SendBursts   atomic.Int64 //lint:guardedby atomic  write bursts (syscall batches)
	Received     atomic.Int64 //lint:guardedby atomic  datagrams accepted
	TxDrops      atomic.Int64 //lint:guardedby atomic  send-queue tail drops
	BadFrames    atomic.Int64 //lint:guardedby atomic  short frames / bad magic / bad version
	UnknownPeers atomic.Int64 //lint:guardedby atomic  traffic for/from unregistered NIDs
}

// Network is a UDP fabric with an in-process address registry, one socket
// per attached node. Nodes attached to the same Network discover each
// other automatically; for genuinely distributed runs, seed the registry
// with Register and pin the local bind address with SetListenAddr (or use
// NewStatic).
//
// Network implements transport.Network, transport.BatchNetwork, and
// rtscts.PacketNetwork (the raw-datagram layer underneath the first two).
type Network struct {
	cfg   Config
	stats Stats

	// addrs is the NID -> UDP address registry: read lock-free on every
	// packet send, written only under mu (rcu.Map writers are serialized
	// by the caller).
	addrs rcu.Map[types.NID, *net.UDPAddr]

	mu      sync.Mutex
	listen  map[types.NID]string //lint:guardedby mu
	nodes   map[types.NID]*node  //lint:guardedby mu
	closed  bool                 //lint:guardedby mu
	initErr error                //lint:guardedby mu
}

// New creates a fabric whose nodes bind ephemeral localhost ports.
func New() *Network { return NewWithConfig(Config{}) }

// NewWithConfig is New with explicit tuning.
func NewWithConfig(cfg Config) *Network {
	return &Network{
		cfg:    cfg.withDefaults(),
		listen: make(map[types.NID]string),
		nodes:  make(map[types.NID]*node),
	}
}

// NewStatic creates a fabric for a distributed run: the local node
// (whichever NID is attached in this OS process) binds listenAddr, and
// peers maps every remote NID to its address. An unresolvable peer
// address is reported by the first Attach, mirroring tcp.NewStatic.
func NewStatic(localNID types.NID, listenAddr string, peers map[types.NID]string) *Network {
	n := New()
	n.SetListenAddr(localNID, listenAddr)
	for nid, addr := range peers {
		if err := n.Register(nid, addr); err != nil {
			n.mu.Lock()
			if n.initErr == nil {
				n.initErr = err
			}
			n.mu.Unlock()
		}
	}
	return n
}

// SetListenAddr pins the bind address used when nid attaches.
func (n *Network) SetListenAddr(nid types.NID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.listen[nid] = addr
}

// Register seeds the address of a node that lives in another OS process
// or on another machine. Re-registering replaces the address (tests use
// this to interpose a lossy proxy) — hence Set, not Insert: the rcu map's
// Insert refuses duplicates, which would silently keep the old address.
func (n *Network) Register(nid types.NID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udp: register %d: %w", nid, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs.Set(nid, ua)
	return nil
}

// Addr reports the bound address of nid, if known — for wiring registries
// across processes and interposing proxies in tests.
func (n *Network) Addr(nid types.NID) (string, bool) {
	a, ok := n.addrs.Get(nid)
	if !ok {
		return "", false
	}
	return a.String(), true
}

// Stats exposes the fabric counters.
func (n *Network) Stats() *Stats { return &n.stats }

// RegisterMetrics exposes the fabric counters as CounterFunc views.
func (n *Network) RegisterMetrics(r *metrics.Registry, ls metrics.Labels) {
	st := &n.stats
	r.CounterFunc("portals_udp_sent_total", "datagrams written to UDP sockets", ls, st.Sent.Load)
	r.CounterFunc("portals_udp_send_bursts_total", "batched write bursts", ls, st.SendBursts.Load)
	r.CounterFunc("portals_udp_received_total", "datagrams accepted from UDP sockets", ls, st.Received.Load)
	r.CounterFunc("portals_udp_tx_drops_total", "send-queue tail drops", ls, st.TxDrops.Load)
	r.CounterFunc("portals_udp_bad_frames_total", "datagrams dropped for bad framing", ls, st.BadFrames.Load)
	r.CounterFunc("portals_udp_unknown_peers_total", "datagrams dropped for unregistered NIDs", ls, st.UnknownPeers.Load)
}

// MTU reports the largest rtscts packet the fabric carries (the datagram
// budget minus the frame header). Part of rtscts.PacketNetwork.
func (n *Network) MTU() int { return n.cfg.MTU - frameHeaderSize }

// Attach registers nid with reliability on top: the returned endpoint is
// an rtscts.Conn over this node's socket. The handler receives complete,
// exactly-once, in-order messages.
func (n *Network) Attach(nid types.NID, h transport.Handler) (transport.Endpoint, error) {
	return rtscts.AttachPacket(n, nid, n.cfg.Reliability, h)
}

// AttachBatch is Attach with batched delivery: the read loop flushes all
// messages completed by one receive burst as a single BatchHandler call.
func (n *Network) AttachBatch(nid types.NID, bh transport.BatchHandler) (transport.Endpoint, error) {
	conn, err := rtscts.AttachPacketBatch(n, nid, n.cfg.Reliability, bh)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	nd := n.nodes[nid]
	n.mu.Unlock()
	if nd != nil {
		nd.setFlush(conn.Flush)
	}
	return conn, nil
}

// AttachPacket binds nid's socket and starts its read/write loops; the
// handler receives raw rtscts packets. Part of rtscts.PacketNetwork —
// rtscts calls this underneath Attach/AttachBatch.
func (n *Network) AttachPacket(nid types.NID, h rtscts.PacketHandler) (rtscts.PacketEndpoint, error) {
	if h == nil {
		return nil, fmt.Errorf("udp: nil handler")
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, types.ErrClosed
	}
	if n.initErr != nil {
		err := n.initErr
		n.mu.Unlock()
		return nil, err
	}
	if _, dup := n.nodes[nid]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("udp: nid %d already attached", nid)
	}
	listenAddr := n.listen[nid]
	n.mu.Unlock()
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}

	ua, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("udp: listen addr: %w", err)
	}
	sock, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("udp: bind: %w", err)
	}
	nd := &node{
		net:  n,
		nid:  nid,
		pc:   newPacketConn(sock),
		h:    h,
		done: make(chan struct{}),
	}
	nd.qcond = sync.NewCond(&nd.qmu)

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		sock.Close()
		return nil, types.ErrClosed
	}
	n.nodes[nid] = nd
	n.addrs.Insert(nid, sock.LocalAddr().(*net.UDPAddr))
	n.mu.Unlock()

	nd.wg.Add(2)
	go nd.writeLoop()
	go nd.readLoop()
	return nd, nil
}

// Close tears down every node's socket.
func (n *Network) Close() error {
	n.mu.Lock()
	nodes := make([]*node, 0, len(n.nodes))
	for _, nd := range n.nodes {
		nodes = append(nodes, nd)
	}
	n.closed = true
	n.nodes = map[types.NID]*node{}
	n.mu.Unlock()
	for _, nd := range nodes {
		nd.Close()
	}
	return nil
}

// outPkt is one framed datagram queued for transmission.
type outPkt struct {
	addr *net.UDPAddr
	buf  *bufpool.Buf // full frame: header + rtscts packet
}

// node owns one UDP socket: the async send queue with its writer
// goroutine, and the batched read loop. It is the rtscts.PacketEndpoint
// for its NID.
type node struct {
	net *Network
	nid types.NID
	pc  packetConn
	h   rtscts.PacketHandler

	// flushFn, when set (batch mode), runs after each receive burst on
	// the read-loop goroutine.
	flushFn atomic.Pointer[func()] //lint:guardedby atomic

	// Send queue. SendPacket appends and returns — it is called from
	// rtscts ack/delivery paths that must never block on a socket — and
	// the writer goroutine drains in coalesced bursts.
	qmu    sync.Mutex
	qcond  *sync.Cond
	sendQ  []outPkt //lint:guardedby qmu
	closed bool     //lint:guardedby qmu

	done chan struct{}
	wg   sync.WaitGroup
}

// SendPacket frames pkt and enqueues it for the writer goroutine. It
// never blocks: an unknown destination or a full queue drops the packet
// (datagram loss the reliability layer already recovers from).
func (nd *node) SendPacket(dst types.NID, pkt []byte) error {
	if len(pkt)+frameHeaderSize > nd.net.cfg.MTU {
		return fmt.Errorf("udp: packet of %d bytes exceeds datagram budget", len(pkt))
	}
	addr, ok := nd.net.addrs.Get(dst)
	if !ok {
		nd.net.stats.UnknownPeers.Add(1)
		return fmt.Errorf("udp: %w: nid %d", types.ErrProcessNotFound, dst)
	}
	buf := bufpool.Get(frameHeaderSize + len(pkt))
	b := buf.Bytes()
	binary.BigEndian.PutUint16(b[0:], frameMagic)
	b[2] = frameVersion
	b[3] = 0
	binary.BigEndian.PutUint32(b[4:], uint32(nd.nid))
	copy(b[frameHeaderSize:], pkt)

	nd.qmu.Lock()
	if nd.closed {
		nd.qmu.Unlock()
		buf.Release()
		return types.ErrClosed
	}
	if len(nd.sendQ) >= nd.net.cfg.SendQueue {
		nd.qmu.Unlock()
		buf.Release()
		nd.net.stats.TxDrops.Add(1)
		return nil // tail drop: retransmission repairs it
	}
	nd.sendQ = append(nd.sendQ, outPkt{addr: addr, buf: buf})
	nd.qmu.Unlock()
	nd.qcond.Signal()
	return nil
}

// LocalNID reports the attached node id.
func (nd *node) LocalNID() types.NID { return nd.nid }

// LocalAddr reports the socket's bound address.
func (nd *node) LocalAddr() net.Addr { return nd.pc.LocalAddr() }

func (nd *node) setFlush(f func()) { nd.flushFn.Store(&f) }

// writeLoop drains the send queue, coalescing whatever has accumulated
// into multi-packet writes. Syscalls happen with no locks held.
func (nd *node) writeLoop() {
	defer nd.wg.Done()
	var batch []outPkt // ping-pong spare for the queue swap
	for {
		nd.qmu.Lock()
		for len(nd.sendQ) == 0 && !nd.closed {
			nd.qcond.Wait()
		}
		if len(nd.sendQ) == 0 && nd.closed {
			nd.qmu.Unlock()
			return
		}
		q := nd.sendQ
		nd.sendQ = batch[:0]
		closed := nd.closed
		nd.qmu.Unlock()

		if !closed {
			for off := 0; off < len(q); {
				n := len(q) - off
				if n > maxWriteBurst {
					n = maxWriteBurst
				}
				written, bursts := nd.pc.writeBatch(q[off : off+n])
				nd.net.stats.Sent.Add(int64(written))
				nd.net.stats.SendBursts.Add(int64(bursts))
				off += n
			}
		}
		for i := range q {
			q[i].buf.Release()
			q[i] = outPkt{}
		}
		batch = q
		if closed {
			return
		}
	}
}

// maxWriteBurst bounds one writeBatch call (and the sendmmsg vector size).
const maxWriteBurst = 64

// readLoop drains receive bursts into persistent buffers and feeds each
// frame's rtscts packet to the handler; in batch mode the completed
// messages flush once per burst. Buffers are reused across iterations —
// rtscts copies what it keeps.
func (nd *node) readLoop() {
	defer nd.wg.Done()
	cfg := nd.net.cfg
	bufs := make([][]byte, cfg.ReadBatch)
	for i := range bufs {
		bufs[i] = make([]byte, cfg.MTU)
	}
	sizes := make([]int, cfg.ReadBatch)
	for {
		count, err := nd.pc.readBatch(bufs, sizes)
		if err != nil {
			return // socket closed
		}
		for i := 0; i < count; i++ {
			src, payload, ok := decodeFrame(bufs[i][:sizes[i]])
			if !ok {
				nd.net.stats.BadFrames.Add(1)
				continue
			}
			nd.net.stats.Received.Add(1)
			nd.h(src, payload)
		}
		if f := nd.flushFn.Load(); f != nil {
			(*f)()
		}
	}
}

// decodeFrame validates the frame header and splits off the rtscts packet.
func decodeFrame(b []byte) (src types.NID, payload []byte, ok bool) {
	if len(b) < frameHeaderSize ||
		binary.BigEndian.Uint16(b[0:]) != frameMagic ||
		b[2] != frameVersion {
		return 0, nil, false
	}
	return types.NID(binary.BigEndian.Uint32(b[4:])), b[frameHeaderSize:], true
}

// Close shuts the socket down and reaps both loops.
func (nd *node) Close() error {
	nd.qmu.Lock()
	if nd.closed {
		nd.qmu.Unlock()
		return nil
	}
	nd.closed = true
	nd.qmu.Unlock()
	nd.qcond.Broadcast()
	close(nd.done)
	err := nd.pc.Close() // unblocks readBatch
	nd.net.mu.Lock()
	if nd.net.nodes[nd.nid] == nd {
		delete(nd.net.nodes, nd.nid)
		nd.net.addrs.Delete(nd.nid)
	}
	nd.net.mu.Unlock()
	nd.wg.Wait()
	return err
}
