package loopback

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
)

// collect returns a handler that appends messages to a guarded slice.
func collect() (transport.Handler, func() []string) {
	var mu sync.Mutex
	var got []string
	h := func(src types.NID, msg []byte) {
		mu.Lock()
		got = append(got, fmt.Sprintf("%d:%s", src, msg))
		mu.Unlock()
	}
	return h, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), got...)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBasicDelivery(t *testing.T) {
	n := New()
	defer n.Close()
	h, got := collect()
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, h); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(got()) == 1 })
	if got()[0] != "1:hello" {
		t.Errorf("got %q", got()[0])
	}
}

func TestOrderedDelivery(t *testing.T) {
	n := New()
	defer n.Close()
	h, got := collect()
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, h); err != nil {
		t.Fatal(err)
	}
	const count = 1000
	for i := 0; i < count; i++ {
		if err := a.Send(2, []byte(fmt.Sprintf("%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(got()) == count })
	for i, m := range got() {
		if want := fmt.Sprintf("1:%06d", i); m != want {
			t.Fatalf("message %d = %q, want %q", i, m, want)
		}
	}
}

func TestDuplicateAttachRejected(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.Attach(1, func(types.NID, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(1, func(types.NID, []byte) {}); err == nil {
		t.Error("duplicate attach accepted")
	}
}

func TestNilHandlerRejected(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.Attach(1, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestSendToUnknownNode(t *testing.T) {
	n := New()
	defer n.Close()
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(99, []byte("x")); !errors.Is(err, types.ErrProcessNotFound) {
		t.Errorf("Send to unknown = %v", err)
	}
}

func TestSelfSend(t *testing.T) {
	n := New()
	defer n.Close()
	h, got := collect()
	a, err := n.Attach(1, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, []byte("me")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(got()) == 1 })
}

// A handler that sends (e.g. the delivery engine emitting an ack) must not
// deadlock, even when two nodes ping-pong through their handlers.
func TestReentrantHandlerSend(t *testing.T) {
	n := New()
	defer n.Close()
	var hits atomic.Int32
	var a, b transport.Endpoint
	var err error
	a, err = n.Attach(1, func(src types.NID, msg []byte) {
		hits.Add(1)
		if msg[0] < 10 {
			if err := a.Send(2, []byte{msg[0] + 1}); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err = n.Attach(2, func(src types.NID, msg []byte) {
		hits.Add(1)
		if msg[0] < 10 {
			if err := b.Send(1, []byte{msg[0] + 1}); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte{0}); err != nil {
		t.Fatal(err)
	}
	// Values 0..10 bounce between the two handlers: 11 deliveries total.
	waitFor(t, func() bool { return hits.Load() == 11 })
}

func TestMessageIsolation(t *testing.T) {
	// The transport must copy: mutating the sent buffer afterwards must
	// not affect what the receiver sees.
	n := New()
	defer n.Close()
	h, got := collect()
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2, h); err != nil {
		t.Fatal(err)
	}
	buf := []byte("aaaa")
	if err := a.Send(2, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "bbbb")
	waitFor(t, func() bool { return len(got()) == 1 })
	if got()[0] != "1:aaaa" {
		t.Errorf("receiver saw mutated buffer: %q", got()[0])
	}
}

func TestEndpointClose(t *testing.T) {
	n := New()
	defer n.Close()
	h, _ := collect()
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach(2, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("x")); !errors.Is(err, types.ErrProcessNotFound) {
		t.Errorf("Send to closed endpoint = %v", err)
	}
	// NID can be reattached after close.
	if _, err := n.Attach(2, h); err != nil {
		t.Errorf("reattach after close: %v", err)
	}
}

func TestNetworkClose(t *testing.T) {
	n := New()
	a, err := n.Attach(1, func(types.NID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, []byte("x")); !errors.Is(err, types.ErrClosed) {
		t.Errorf("Send after network close = %v", err)
	}
	if _, err := n.Attach(3, func(types.NID, []byte) {}); !errors.Is(err, types.ErrClosed) {
		t.Errorf("Attach after close = %v", err)
	}
}

func TestConcurrentSenders(t *testing.T) {
	n := New()
	defer n.Close()
	var mu sync.Mutex
	perSrc := map[types.NID][]int{}
	_, err := n.Attach(0, func(src types.NID, msg []byte) {
		mu.Lock()
		perSrc[src] = append(perSrc[src], int(msg[0])<<8|int(msg[1]))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	const senders, each = 4, 300
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		ep, err := n.Attach(types.NID(s), func(types.NID, []byte) {})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ep transport.Endpoint) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := ep.Send(0, []byte{byte(i >> 8), byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(ep)
	}
	wg.Wait()
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, v := range perSrc {
			total += len(v)
		}
		return total == senders*each
	})
	// Per-pair ordering must hold even with interleaved senders.
	mu.Lock()
	defer mu.Unlock()
	for src, seq := range perSrc {
		for i, v := range seq {
			if v != i {
				t.Fatalf("src %d message %d = %d (out of order)", src, i, v)
			}
		}
	}
}
