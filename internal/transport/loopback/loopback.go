// Package loopback is an in-process transport: messages between attached
// nodes are moved by a per-node delivery goroutine through unbounded FIFO
// queues. Delivery is reliable and in order — not just per pair but
// globally per receiving node — and has no configured latency, which makes
// it the reference fabric for semantic tests.
//
// The per-node delivery goroutine (rather than running handlers on the
// sender's goroutine) matters: it keeps the receive path independent of
// every application goroutine, exactly like a NIC engine, so application-
// bypass behaviour is preserved even on this trivial fabric.
package loopback

import (
	"fmt"
	"sync"

	"repro/internal/transport"
	"repro/internal/types"
)

// Network is an in-process fabric. The zero value is not usable; call New.
type Network struct {
	mu     sync.Mutex
	nodes  map[types.NID]*endpoint
	closed bool
}

// New creates an empty loopback fabric.
func New() *Network {
	return &Network{nodes: make(map[types.NID]*endpoint)}
}

type inMsg struct {
	src types.NID
	msg []byte
}

type endpoint struct {
	net     *Network
	nid     types.NID
	handler transport.Handler

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []inMsg
	closed bool
	done   chan struct{}
}

// Attach registers a node. The handler runs on this node's delivery
// goroutine.
func (n *Network) Attach(nid types.NID, h transport.Handler) (transport.Endpoint, error) {
	if h == nil {
		return nil, fmt.Errorf("loopback: nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, types.ErrClosed
	}
	if _, dup := n.nodes[nid]; dup {
		return nil, fmt.Errorf("loopback: nid %d already attached", nid)
	}
	ep := &endpoint{net: n, nid: nid, handler: h, done: make(chan struct{})}
	ep.cond = sync.NewCond(&ep.mu)
	n.nodes[nid] = ep
	go ep.deliveryLoop()
	return ep, nil
}

// Close tears down the fabric.
func (n *Network) Close() error {
	n.mu.Lock()
	eps := make([]*endpoint, 0, len(n.nodes))
	for _, ep := range n.nodes {
		eps = append(eps, ep)
	}
	n.closed = true
	n.nodes = make(map[types.NID]*endpoint)
	n.mu.Unlock()
	for _, ep := range eps {
		ep.shutdown()
	}
	return nil
}

func (ep *endpoint) deliveryLoop() {
	defer close(ep.done)
	for {
		ep.mu.Lock()
		for len(ep.queue) == 0 && !ep.closed {
			ep.cond.Wait()
		}
		if ep.closed && len(ep.queue) == 0 {
			ep.mu.Unlock()
			return
		}
		m := ep.queue[0]
		ep.queue = ep.queue[1:]
		ep.mu.Unlock()
		ep.handler(m.src, m.msg)
	}
}

func (ep *endpoint) enqueue(src types.NID, msg []byte) {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return // messages to a detached node vanish, like any network
	}
	ep.queue = append(ep.queue, inMsg{src: src, msg: cp})
	ep.mu.Unlock()
	ep.cond.Signal()
}

// Send delivers msg to dst's queue. Unknown destinations are an error so
// misconfigured jobs fail loudly in tests.
func (ep *endpoint) Send(dst types.NID, msg []byte) error {
	ep.net.mu.Lock()
	target, ok := ep.net.nodes[dst]
	closed := ep.net.closed
	ep.net.mu.Unlock()
	if closed {
		return types.ErrClosed
	}
	if !ok {
		return fmt.Errorf("loopback: %w: nid %d", types.ErrProcessNotFound, dst)
	}
	target.enqueue(ep.nid, msg)
	return nil
}

func (ep *endpoint) LocalNID() types.NID { return ep.nid }

// Close detaches the node; queued messages are dropped after the current
// handler invocation finishes.
func (ep *endpoint) Close() error {
	ep.net.mu.Lock()
	if ep.net.nodes[ep.nid] == ep {
		delete(ep.net.nodes, ep.nid)
	}
	ep.net.mu.Unlock()
	ep.shutdown()
	return nil
}

func (ep *endpoint) shutdown() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		<-ep.done
		return
	}
	ep.closed = true
	ep.queue = nil
	ep.mu.Unlock()
	ep.cond.Broadcast()
	<-ep.done
}
