// Package loopback is an in-process transport: messages between attached
// nodes are moved by a per-node delivery goroutine through unbounded FIFO
// queues. Delivery is reliable and in order per (source, destination) pair
// — the §4.1 service — and has no configured latency, which makes it the
// reference fabric for semantic tests.
//
// The per-node delivery goroutine (rather than running handlers on the
// sender's goroutine) matters: it keeps the receive path independent of
// every application goroutine, exactly like a NIC engine, so application-
// bypass behaviour is preserved even on this trivial fabric.
//
// The delivery goroutine dequeues in batches: each wakeup swaps the whole
// pending queue out under one lock acquisition and hands it over — to a
// BatchHandler in a single call (transport ownership of every message
// transfers, no copy), or to a plain Handler one message at a time.
// Messages are carried in pooled buffers (internal/bufpool), copied once
// on the sender's goroutine at enqueue — or not at all when the sender
// uses SendBuf (transport.BufSender) and hands its pooled buffer over.
package loopback

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bufpool"
	"repro/internal/obs/metrics"
	"repro/internal/transport"
	"repro/internal/types"
)

// Stats counts fabric-level events; every field is an atomic, bumped
// without any lock beyond what the paths already hold.
type Stats struct {
	Sent      atomic.Int64 // messages accepted into a destination queue
	Delivered atomic.Int64 // messages handed to a handler
	Dropped   atomic.Int64 // messages to closed nodes, discarded
}

// Network is an in-process fabric. The zero value is not usable; call New.
type Network struct {
	stats Stats

	mu     sync.Mutex
	nodes  map[types.NID]*endpoint
	closed bool
}

// Stats exposes the fabric counters.
func (n *Network) Stats() *Stats { return &n.stats }

// RegisterMetrics exposes the fabric counters as CounterFunc views.
func (n *Network) RegisterMetrics(r *metrics.Registry, ls metrics.Labels) {
	st := &n.stats
	r.CounterFunc("portals_fabric_sent_total", "messages accepted by the fabric", ls, st.Sent.Load)
	r.CounterFunc("portals_fabric_delivered_total", "messages handed to a destination handler", ls, st.Delivered.Load)
	r.CounterFunc("portals_fabric_lost_total", "messages dropped at detached nodes", ls, st.Dropped.Load)
}

// New creates an empty loopback fabric.
func New() *Network {
	return &Network{nodes: make(map[types.NID]*endpoint)}
}

type endpoint struct {
	net      *Network
	nid      types.NID
	handler  transport.Handler      // exactly one of handler
	bhandler transport.BatchHandler // and bhandler is non-nil

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []transport.Delivery
	closed bool
	done   chan struct{}
}

// Attach registers a node. The handler runs on this node's delivery
// goroutine.
func (n *Network) Attach(nid types.NID, h transport.Handler) (transport.Endpoint, error) {
	if h == nil {
		return nil, fmt.Errorf("loopback: nil handler")
	}
	return n.attach(nid, &endpoint{handler: h})
}

// AttachBatch registers a node with a batch handler: the delivery
// goroutine hands over whole dequeued batches, transferring ownership of
// each message (transport.BatchHandler).
func (n *Network) AttachBatch(nid types.NID, h transport.BatchHandler) (transport.Endpoint, error) {
	if h == nil {
		return nil, fmt.Errorf("loopback: nil handler")
	}
	return n.attach(nid, &endpoint{bhandler: h})
}

func (n *Network) attach(nid types.NID, ep *endpoint) (transport.Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, types.ErrClosed
	}
	if _, dup := n.nodes[nid]; dup {
		return nil, fmt.Errorf("loopback: nid %d already attached", nid)
	}
	ep.net = n
	ep.nid = nid
	ep.done = make(chan struct{})
	ep.cond = sync.NewCond(&ep.mu)
	n.nodes[nid] = ep
	go ep.deliveryLoop()
	return ep, nil
}

// Close tears down the fabric.
func (n *Network) Close() error {
	n.mu.Lock()
	eps := make([]*endpoint, 0, len(n.nodes))
	for _, ep := range n.nodes {
		eps = append(eps, ep)
	}
	n.closed = true
	n.nodes = make(map[types.NID]*endpoint)
	n.mu.Unlock()
	for _, ep := range eps {
		ep.shutdown()
	}
	return nil
}

func (ep *endpoint) deliveryLoop() {
	defer close(ep.done)
	var spare []transport.Delivery // recycled batch backing; owned by this goroutine
	for {
		ep.mu.Lock()
		for len(ep.queue) == 0 && !ep.closed {
			ep.cond.Wait()
		}
		if ep.closed && len(ep.queue) == 0 {
			ep.mu.Unlock()
			return
		}
		// One lock operation dequeues everything pending.
		batch := ep.queue
		ep.queue = spare[:0]
		ep.mu.Unlock()
		ep.net.stats.Delivered.Add(int64(len(batch)))
		if ep.bhandler != nil {
			ep.bhandler(batch) // message ownership moves to the handler
		} else {
			for i := range batch {
				ep.handler(batch[i].Src, batch[i].Msg)
				batch[i].Release()
			}
		}
		for i := range batch {
			batch[i] = transport.Delivery{} // drop refs so the backing array pins nothing
		}
		spare = batch[:0]
	}
}

func (ep *endpoint) enqueue(src types.NID, msg []byte) {
	// The per-message copy, into a pooled buffer, on the SENDER's
	// goroutine: the transport contract lets the caller reuse msg as soon
	// as Send returns, and copying here (not on the delivery goroutine)
	// keeps concurrent senders' copies parallel.
	cp := bufpool.Get(len(msg))
	copy(cp.Bytes(), msg)
	ep.enqueueBuf(src, cp)
}

// enqueueBuf queues an owned buffer — the zero-copy path under SendBuf.
// Ownership moves into the queue (or the buffer is released when the
// endpoint is already closed).
//
//lint:consumes buf
func (ep *endpoint) enqueueBuf(src types.NID, buf *bufpool.Buf) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		buf.Release()
		ep.net.stats.Dropped.Add(1)
		return // messages to a detached node vanish, like any network
	}
	ep.queue = append(ep.queue, transport.Delivery{Src: src, Msg: buf.Bytes(), Buf: buf})
	ep.mu.Unlock()
	ep.net.stats.Sent.Add(1)
	ep.cond.Signal()
}

// Send delivers msg to dst's queue. Unknown destinations are an error so
// misconfigured jobs fail loudly in tests.
func (ep *endpoint) Send(dst types.NID, msg []byte) error {
	ep.net.mu.Lock()
	target, ok := ep.net.nodes[dst]
	closed := ep.net.closed
	ep.net.mu.Unlock()
	if closed {
		return types.ErrClosed
	}
	if !ok {
		return fmt.Errorf("loopback: %w: nid %d", types.ErrProcessNotFound, dst)
	}
	target.enqueue(ep.nid, msg)
	return nil
}

// SendBuf is the transport.BufSender fast path: the sender's pooled buffer
// goes straight into the destination queue — no copy, no pool round trip —
// and comes out the other side as the Delivery's Buf. Ownership of buf is
// the transport's from here on, error or not.
func (ep *endpoint) SendBuf(dst types.NID, buf *bufpool.Buf) error {
	ep.net.mu.Lock()
	target, ok := ep.net.nodes[dst]
	closed := ep.net.closed
	ep.net.mu.Unlock()
	if closed {
		buf.Release()
		return types.ErrClosed
	}
	if !ok {
		buf.Release()
		return fmt.Errorf("loopback: %w: nid %d", types.ErrProcessNotFound, dst)
	}
	target.enqueueBuf(ep.nid, buf)
	return nil
}

func (ep *endpoint) LocalNID() types.NID { return ep.nid }

// Close detaches the node; queued messages are dropped after the current
// handler invocation finishes. No handler runs after Close returns.
func (ep *endpoint) Close() error {
	ep.net.mu.Lock()
	if ep.net.nodes[ep.nid] == ep {
		delete(ep.net.nodes, ep.nid)
	}
	ep.net.mu.Unlock()
	ep.shutdown()
	return nil
}

func (ep *endpoint) shutdown() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		<-ep.done
		return
	}
	ep.closed = true
	q := ep.queue
	ep.queue = nil
	ep.mu.Unlock()
	for i := range q {
		q[i].Release()
	}
	ep.cond.Broadcast()
	<-ep.done
}
