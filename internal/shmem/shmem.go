// Package shmem is a one-sided put/get layer in the style of Cray SHMEM,
// built directly on Portals. §2 and §4.4 cite shmem and the MPI-2
// one-sided operations as the one-sided clients of the Portals addressing
// model: process id + memory buffer id + offset, which maps one-to-one
// onto (ProcessID, match bits, remote offset) with remotely-managed
// descriptors.
//
// A PE (processing element) exposes named symmetric regions; remote PEs
// read and write them with Put/Get/PutNB plus Fence to order completions.
// The target application is never involved — one-sided semantics fall
// out of application bypass for free.
package shmem

import (
	"errors"
	"fmt"
	"time"

	"repro/portals"
)

// ptlShmem is the portal table index the layer claims.
const ptlShmem portals.PtlIndex = 3

// PE is one process's endpoint of a symmetric job. A PE's methods must be
// called from a single goroutine (one PE is one processing element); the
// mutable fields are //lint:guardedby confined to machine-check that
// contract (docs/LINT.md).
type PE struct {
	ni      *portals.NI
	rank    int
	ids     []portals.ProcessID
	eq      portals.Handle
	inEQ    portals.Handle            // events for operations landing in exposed regions
	nbOut   int                       //lint:guardedby confined  outstanding non-blocking operations
	arrived map[portals.MatchBits]int //lint:guardedby confined  buffered put arrivals per region

	// FenceTimeout bounds how long Fence waits for outstanding
	// acknowledgments (a put to an unexposed region is silently dropped
	// by Portals, so its ack never comes). Default 30s.
	FenceTimeout time.Duration
}

// NewPE wraps an initialized Portals interface; ids maps rank → process,
// identical on all PEs.
func NewPE(ni *portals.NI, rank int, ids []portals.ProcessID) (*PE, error) {
	if rank < 0 || rank >= len(ids) {
		return nil, fmt.Errorf("shmem: rank %d out of range", rank)
	}
	eq, err := ni.EQAlloc(1024)
	if err != nil {
		return nil, err
	}
	inEQ, err := ni.EQAlloc(1024)
	if err != nil {
		return nil, err
	}
	return &PE{
		ni: ni, rank: rank, ids: append([]portals.ProcessID(nil), ids...),
		eq: eq, inEQ: inEQ, arrived: make(map[portals.MatchBits]int),
		FenceTimeout: 30 * time.Second,
	}, nil
}

// Rank and Size report job coordinates.
func (p *PE) Rank() int { return p.rank }
func (p *PE) Size() int { return len(p.ids) }

// Expose publishes buf as symmetric region id: any PE may Put into or Get
// from it at byte offsets, concurrently with local computation.
func (p *PE) Expose(id uint64, buf []byte) error {
	me, err := p.ni.MEAttach(ptlShmem, portals.AnyProcess,
		portals.MatchBits(id), 0, portals.Retain, portals.After)
	if err != nil {
		return err
	}
	_, err = p.ni.MDAttach(me, portals.MD{
		Start:     buf,
		Threshold: portals.ThresholdInfinite,
		Options:   portals.MDOpPut | portals.MDOpGet | portals.MDManageRemote | portals.MDTruncate,
		EQ:        p.inEQ,
	}, portals.Retain)
	return err
}

// PutNB starts a non-blocking put of data into (pe, region id) at offset.
// Completion is deferred to Fence.
func (p *PE) PutNB(pe int, id uint64, offset uint64, data []byte) error {
	if pe < 0 || pe >= len(p.ids) {
		return fmt.Errorf("shmem: pe %d out of range", pe)
	}
	// Threshold 2: the send and its ack; the ack is the remote-completion
	// signal Fence waits for.
	md, err := p.ni.MDBind(portals.MD{Start: data, Threshold: 2, EQ: p.eq}, portals.Unlink)
	if err != nil {
		return err
	}
	if err := p.ni.Put(md, portals.AckReq, p.ids[pe], ptlShmem, 0, portals.MatchBits(id), offset); err != nil {
		return err
	}
	p.nbOut++ // one ack expected
	return nil
}

// Put writes data into the remote region and returns once the target
// acknowledged delivery (remote completion).
func (p *PE) Put(pe int, id uint64, offset uint64, data []byte) error {
	if err := p.PutNB(pe, id, offset, data); err != nil {
		return err
	}
	return p.Fence()
}

// Get reads len(buf) bytes from the remote region at offset into buf,
// blocking until the data arrives.
func (p *PE) Get(pe int, id uint64, offset uint64, buf []byte) error {
	if pe < 0 || pe >= len(p.ids) {
		return fmt.Errorf("shmem: pe %d out of range", pe)
	}
	md, err := p.ni.MDBind(portals.MD{Start: buf, Threshold: 1, EQ: p.eq}, portals.Unlink)
	if err != nil {
		return err
	}
	if err := p.ni.Get(md, p.ids[pe], ptlShmem, 0, portals.MatchBits(id), offset); err != nil {
		return err
	}
	for {
		ev, err := p.ni.EQWait(p.eq)
		if err != nil && !errors.Is(err, portals.ErrEQDropped) {
			return err
		}
		switch ev.Type {
		case portals.EventReply:
			if ev.MLength < uint64(len(buf)) {
				return fmt.Errorf("shmem: short get: %d of %d bytes (offset beyond region?)", ev.MLength, len(buf))
			}
			return nil
		case portals.EventAck:
			p.nbOut-- // a straggler from earlier PutNBs
		}
	}
}

// Fence blocks until every outstanding non-blocking put has been
// acknowledged by its target.
func (p *PE) Fence() error {
	deadline := time.Now().Add(p.FenceTimeout)
	for p.nbOut > 0 {
		ev, err := p.ni.EQPoll(p.eq, time.Until(deadline))
		if errors.Is(err, portals.ErrEQEmpty) {
			return fmt.Errorf("shmem: fence timed out with %d operations outstanding", p.nbOut)
		}
		if err != nil && !errors.Is(err, portals.ErrEQDropped) {
			return err
		}
		if ev.Type == portals.EventAck {
			p.nbOut--
		}
	}
	return nil
}

// WaitArrivals blocks until n one-sided puts have landed in the exposed
// region with the given id (the shmem_wait analogue, built on the event
// queue rather than memory polling, which Go's memory model forbids).
// Arrivals in other regions are buffered for later WaitArrivals calls on
// those regions, so concurrent protocols on different regions (e.g. the
// internal barrier) never consume each other's events.
func (p *PE) WaitArrivals(region uint64, n int) error {
	key := portals.MatchBits(region)
	for n > 0 {
		if p.arrived[key] > 0 {
			p.arrived[key]--
			n--
			continue
		}
		ev, err := p.ni.EQWait(p.inEQ)
		if err != nil && !errors.Is(err, portals.ErrEQDropped) {
			return err
		}
		if ev.Type == portals.EventPut {
			p.arrived[ev.MatchBits]++
		}
	}
	return nil
}

// Barrier synchronizes all PEs with one-sided puts only: dissemination
// over a dedicated exposed region (region id barrierRegion must have been
// exposed by every PE with size ≥ 64 bytes via ExposeBarrier).
const barrierRegion uint64 = 0xBA44

// ExposeBarrier sets up the internal barrier region; call once per PE
// before the first Barrier.
func (p *PE) ExposeBarrier() error {
	return p.Expose(barrierRegion, make([]byte, 64))
}

// Barrier blocks until all PEs arrive. Each round writes a flag byte into
// the partner's barrier region and waits for the symmetric arrival event.
func (p *PE) Barrier() error {
	n := len(p.ids)
	round := 0
	for dist := 1; dist < n; dist *= 2 {
		dst := (p.rank + dist) % n
		if err := p.PutNB(dst, barrierRegion, uint64(round), []byte{1}); err != nil {
			return err
		}
		// Wait for this round's incoming barrier put (arrivals in other
		// regions are left for their own waiters; later-round barrier puts
		// from faster peers are safely counted now — see the package
		// discussion of counting barriers).
		if err := p.WaitArrivals(barrierRegion, 1); err != nil {
			return err
		}
		round++
	}
	return p.Fence()
}
