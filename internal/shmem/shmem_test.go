package shmem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/portals"
)

// job launches n PEs with a region exposed per the setup func.
func job(t *testing.T, n int) []*PE {
	t.Helper()
	m := portals.NewMachine(portals.Loopback())
	t.Cleanup(func() { m.Close() })
	nis, err := m.LaunchJob(n)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]portals.ProcessID, n)
	for r, ni := range nis {
		ids[r] = ni.ID()
	}
	pes := make([]*PE, n)
	for r, ni := range nis {
		pe, err := NewPE(ni, r, ids)
		if err != nil {
			t.Fatal(err)
		}
		pes[r] = pe
	}
	return pes
}

func TestPutIntoRemoteRegion(t *testing.T) {
	pes := job(t, 2)
	target := make([]byte, 64)
	if err := pes[1].Expose(7, target); err != nil {
		t.Fatal(err)
	}
	if err := pes[0].Put(1, 7, 8, []byte("one-sided")); err != nil {
		t.Fatal(err)
	}
	// Put is remotely complete on return (it waited for the ack).
	if !bytes.Equal(target[8:17], []byte("one-sided")) {
		t.Errorf("target = %q", target[8:17])
	}
}

func TestGetFromRemoteRegion(t *testing.T) {
	pes := job(t, 2)
	src := []byte("symmetric heap contents")
	if err := pes[1].Expose(9, src); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if err := pes[0].Get(1, 9, 10, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "heap cont" {
		t.Errorf("got %q", buf)
	}
}

func TestPutNBAndFence(t *testing.T) {
	pes := job(t, 2)
	target := make([]byte, 256)
	if err := pes[1].Expose(1, target); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := pes[0].PutNB(1, 1, uint64(i*16), bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pes[0].Fence(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if target[i*16] != byte(i) || target[i*16+15] != byte(i) {
			t.Fatalf("block %d = %d", i, target[i*16])
		}
	}
}

func TestGetBeyondRegionFails(t *testing.T) {
	pes := job(t, 2)
	if err := pes[1].Expose(2, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if err := pes[0].Get(1, 2, 8, buf); err == nil {
		t.Error("get past end of region succeeded in full")
	}
}

func TestUnknownRegionTimesOutOrErrors(t *testing.T) {
	pes := job(t, 2)
	// No region 42 exposed: the put is dropped at the target; the ack
	// never comes; Fence must not hang forever. Use a goroutine with a
	// deadline.
	pes[0].FenceTimeout = 300 * time.Millisecond
	if err := pes[0].PutNB(1, 42, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- pes[0].Fence() }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("fence succeeded despite dropped put")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("fence hung")
	}
}

func TestWaitArrivals(t *testing.T) {
	pes := job(t, 2)
	region := make([]byte, 32)
	if err := pes[1].Expose(5, region); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		_ = pes[0].Put(1, 5, 0, []byte("a"))
		_ = pes[0].Put(1, 5, 1, []byte("b"))
	}()
	if err := pes[1].WaitArrivals(5, 2); err != nil {
		t.Fatal(err)
	}
	if region[0] != 'a' || region[1] != 'b' {
		t.Errorf("region = %q", region[:2])
	}
}

func TestOneSidedBarrier(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			pes := job(t, n)
			for _, pe := range pes {
				if err := pe.ExposeBarrier(); err != nil {
					t.Fatal(err)
				}
			}
			// Three consecutive barriers; every PE must pass all three.
			var wg sync.WaitGroup
			errs := make([]error, n)
			for r, pe := range pes {
				wg.Add(1)
				go func(r int, pe *PE) {
					defer wg.Done()
					for i := 0; i < 3; i++ {
						if err := pe.Barrier(); err != nil {
							errs[r] = err
							return
						}
					}
				}(r, pe)
			}
			wg.Wait()
			for r, err := range errs {
				if err != nil {
					t.Fatalf("pe %d: %v", r, err)
				}
			}
		})
	}
}

func TestDistributedCounterPattern(t *testing.T) {
	// The onesided example's core pattern: every PE deposits its rank
	// into a root-owned table slot, then the root reads them all.
	pes := job(t, 4)
	table := make([]byte, 4)
	if err := pes[0].Expose(11, table); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 1; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := pes[r].Put(0, 11, uint64(r), []byte{byte(r * 10)}); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	for r := 1; r < 4; r++ {
		if table[r] != byte(r*10) {
			t.Errorf("slot %d = %d", r, table[r])
		}
	}
}

func TestInvalidPE(t *testing.T) {
	pes := job(t, 2)
	if err := pes[0].PutNB(9, 0, 0, nil); err == nil {
		t.Error("put to bad PE accepted")
	}
	if err := pes[0].Get(9, 0, 0, nil); err == nil {
		t.Error("get from bad PE accepted")
	}
}
