// Package trace is a per-message flight recorder for the whole message
// path: tx-enqueue → wire-tx → loss/retransmit → lane-dispatch →
// match-start/match-done → deliver → event-post → ack.
//
// Records land in sharded power-of-two ring buffers written with a single
// atomic reservation plus a per-slot seqlock stamp — the same design as the
// PR-3 event ring (internal/eventq) — so Record on a delivery path is
// lock-free and 0 allocs/op, and a disabled tracer costs one atomic load
// and a predicted branch. Spans are keyed by (initiator NID/PID, seq):
// message-level stages use the wire header's Seq assigned at StartPut /
// StartGet, packet-level stages (wire-tx, loss, retransmit) use transport
// sequence counters under PID 0.
//
// Stamp protocol (race-detector-clean): for reservation p with ring size N,
//
//	writeStamp(p) = 2p+1   (odd: slot claimed, record in flight)
//	doneStamp(p)  = 2p+2   (even: record at lap p/N is readable)
//
// A writer claims its slot with a single compare-and-swap from the previous
// lap's doneStamp to writeStamp(p); if the CAS fails — a reader holds the
// slot, or the previous lap's writer has not finished — the record is
// dropped and a conflict counter bumped, rather than spinning (a delivery
// path must never wait) or racing (the plain Record field is only touched
// by whoever owns the stamp). Readers likewise CAS a done stamp to the odd
// stamp+1 to lock the slot, copy, and restore. See docs/OBSERVABILITY.md.
package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// Stage identifies one step of the message path.
type Stage uint8

const (
	// StageTxEnqueue marks StartPut/StartGet handing a message to the
	// transport; Arg is the payload length.
	StageTxEnqueue Stage = 1 + iota
	// StageWireTx marks a transport putting bytes on the wire; Arg is the
	// frame length. Keyed (src NID, 0, packet seq).
	StageWireTx
	// StageLoss marks a simnet fault dropping a frame; Arg is the frame
	// length. Keyed (src NID, 0, drop count).
	StageLoss
	// StageRetransmit marks an rtscts retransmission attempt; Arg is the
	// backoff delay in nanoseconds that preceded it.
	StageRetransmit
	// StageLaneDispatch marks the nicsim dispatcher handing a message to a
	// delivery lane; Arg is the lane index.
	StageLaneDispatch
	// StageMatchStart marks entry into the Figure-4 match walk.
	StageMatchStart
	// StageMatchDone marks the walk's end; Arg is the walk length in steps.
	StageMatchDone
	// StageDeliver marks payload bytes landing in user memory; Arg is the
	// byte count.
	StageDeliver
	// StageEventPost marks an event landing in an event queue; Arg is the
	// event kind.
	StageEventPost
	// StageAck marks the initiator consuming an ack/reply; Arg is the
	// mlength. Keyed by the original initiator and wire seq.
	StageAck
	// StageAppBurnStart / StageAppBurnEnd bracket the bypass experiment's
	// compute burn (Figure 6); keyed (NID, PID, iteration).
	StageAppBurnStart
	StageAppBurnEnd
	// StageTrigFire marks a triggered operation firing on the delivery path
	// (core/ct.go fireOp); keyed (NID, PID, threshold), Arg is the op kind
	// (1 put, 2 get, 3 ct-inc). Landing inside a burn span is the
	// offloaded-collective evidence cmd/tracecheck -require-offload checks.
	StageTrigFire
)

var stageNames = [...]string{
	StageTxEnqueue:    "tx-enqueue",
	StageWireTx:       "wire-tx",
	StageLoss:         "loss",
	StageRetransmit:   "retransmit",
	StageLaneDispatch: "lane-dispatch",
	StageMatchStart:   "match-start",
	StageMatchDone:    "match-done",
	StageDeliver:      "deliver",
	StageEventPost:    "event-post",
	StageAck:          "ack",
	StageAppBurnStart: "burn-start",
	StageAppBurnEnd:   "burn-end",
	StageTrigFire:     "trig-fire",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) && stageNames[s] != "" {
		return stageNames[s]
	}
	return "unknown"
}

// Entry is one flight-recorder record. TS is nanoseconds since the
// recorder's epoch (monotonic).
type Entry struct {
	TS    int64
	Seq   uint64
	Arg   uint64
	NID   uint32
	PID   uint32
	Stage Stage
}

// slot pairs a record with its seqlock stamp (see the package comment for
// the protocol).
//
//lint:seqlock stamp
type slot struct {
	stamp atomic.Uint64
	rec   Entry
}

type shard struct {
	pos atomic.Uint64
	// pad keeps each shard's reservation counter on its own cache line so
	// concurrent writers on different shards do not false-share.
	_     [56]byte
	slots []slot
	mask  uint64
}

func writeStamp(p uint64) uint64 { return 2*p + 1 }
func doneStamp(p uint64) uint64  { return 2*p + 2 }

// Config sizes a Recorder. Both values are rounded up to powers of two.
type Config struct {
	// Shards is the number of independent rings (default 4). A message's
	// records all land in the shard chosen by its key hash, so one
	// message's records stay ordered by reservation within a shard.
	Shards int
	// ShardSize is the number of slots per ring (default 16384). Old
	// records are overwritten once a ring wraps.
	ShardSize int
}

const (
	defaultShards    = 4
	defaultShardSize = 16384
)

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Recorder is a set of sharded flight-recorder rings.
type Recorder struct {
	epoch     time.Time
	shards    []shard
	shardMask uint64
	conflicts atomic.Uint64
}

// New builds a Recorder. The zero Config gives 4 shards × 16384 slots
// (~2.6 MiB).
func New(cfg Config) *Recorder {
	ns := cfg.Shards
	if ns <= 0 {
		ns = defaultShards
	}
	ns = ceilPow2(ns)
	sz := cfg.ShardSize
	if sz <= 0 {
		sz = defaultShardSize
	}
	sz = ceilPow2(sz)
	r := &Recorder{
		epoch:     time.Now(),
		shards:    make([]shard, ns),
		shardMask: uint64(ns - 1),
	}
	for i := range r.shards {
		r.shards[i].slots = make([]slot, sz)
		r.shards[i].mask = uint64(sz - 1)
	}
	return r
}

// shardHash spreads a span key across shards with one multiply and a
// high-bits fold (Fibonacci hashing) — cheaper than a full splitmix64
// finalizer, and shard choice only needs dispersion, not avalanche.
func shardHash(nid, pid uint32, seq uint64) uint64 {
	x := (uint64(nid)<<32 | uint64(pid)) ^ seq
	return (x * 0x9e3779b97f4a7c15) >> 32
}

// Record appends one entry. Lock-free, 0 allocs; drops (and counts) the
// record instead of waiting if the slot is contended.
//
//lint:noalloc the flight recorder rides the message path (TestRecordAllocs)
func (r *Recorder) Record(stage Stage, nid, pid uint32, seq, arg uint64) {
	ts := int64(time.Since(r.epoch))
	sh := &r.shards[shardHash(nid, pid, seq)&r.shardMask]
	p := sh.pos.Add(1) - 1
	s := &sh.slots[p&sh.mask]
	var prev uint64
	if n := uint64(len(sh.slots)); p >= n {
		prev = doneStamp(p - n)
	}
	if !s.stamp.CompareAndSwap(prev, writeStamp(p)) {
		r.conflicts.Add(1)
		return
	}
	s.rec = Entry{TS: ts, Seq: seq, Arg: arg, NID: nid, PID: pid, Stage: stage}
	s.stamp.Store(doneStamp(p))
}

// Conflicts reports how many records were dropped on slot contention.
func (r *Recorder) Conflicts() uint64 { return r.conflicts.Load() }

// Epoch returns the recorder's time origin (TS fields are offsets from it).
func (r *Recorder) Epoch() time.Time { return r.epoch }

// Snapshot copies out every readable record, ordered by timestamp. Slots
// mid-write are skipped. Snapshot locks each slot briefly via the stamp, so
// concurrent Records against a snapshotted slot may be dropped (counted as
// conflicts) — Snapshot is an exporter-side call, not a hot-path one.
func (r *Recorder) Snapshot() []Entry {
	var out []Entry
	for si := range r.shards {
		sh := &r.shards[si]
		for i := range sh.slots {
			s := &sh.slots[i]
			st := s.stamp.Load()
			if st == 0 || st%2 == 1 {
				continue // never written, or write/read in flight
			}
			if !s.stamp.CompareAndSwap(st, st+1) {
				continue
			}
			rec := s.rec
			s.stamp.Store(st)
			out = append(out, rec)
		}
	}
	sortRecords(out)
	return out
}

// sortRecords orders by TS, breaking ties by (NID, PID, Seq, Stage) so
// exports are deterministic. Only Snapshot sorts — never the hot path.
func sortRecords(recs []Entry) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.NID != b.NID {
			return a.NID < b.NID
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Stage < b.Stage
	})
}
