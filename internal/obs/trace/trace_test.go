package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestWraparound drives a single small ring far past capacity and checks
// that the survivors are exactly the newest window, in order.
func TestWraparound(t *testing.T) {
	r := New(Config{Shards: 1, ShardSize: 8})
	const total = 100
	for i := 0; i < total; i++ {
		r.Record(StageDeliver, 1, 2, uint64(i), uint64(i)*10)
	}
	recs := r.Snapshot()
	if len(recs) != 8 {
		t.Fatalf("snapshot after wrap: got %d records, want 8", len(recs))
	}
	if r.Conflicts() != 0 {
		t.Fatalf("sequential writes should never conflict, got %d", r.Conflicts())
	}
	// Snapshot sorts by TS; a single writer's TS values are nondecreasing,
	// and the survivors must be the last 8 seqs.
	for i, rec := range recs {
		want := uint64(total - 8 + i)
		if rec.Seq != want {
			t.Errorf("record %d: seq=%d want %d", i, rec.Seq, want)
		}
		if rec.Arg != want*10 {
			t.Errorf("record %d: arg=%d want %d", i, rec.Arg, want*10)
		}
		if rec.NID != 1 || rec.PID != 2 || rec.Stage != StageDeliver {
			t.Errorf("record %d: wrong identity %+v", i, rec)
		}
	}
}

// TestRoundsUpSizes checks power-of-two rounding.
func TestRoundsUpSizes(t *testing.T) {
	r := New(Config{Shards: 3, ShardSize: 100})
	if len(r.shards) != 4 {
		t.Errorf("shards: got %d, want 4", len(r.shards))
	}
	if len(r.shards[0].slots) != 128 {
		t.Errorf("shard size: got %d, want 128", len(r.shards[0].slots))
	}
}

// TestConcurrentWriters hammers one recorder from many goroutines (run
// under -race in CI). Every snapshotted record must be internally
// consistent — the seqlock stamps must never let a half-written record out.
func TestConcurrentWriters(t *testing.T) {
	r := New(Config{Shards: 2, ShardSize: 64})
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Arg encodes the full identity so torn records are
				// detectable below.
				seq := uint64(w)<<32 | uint64(i)
				r.Record(StageMatchDone, uint32(w), uint32(w), seq, seq)
			}
		}(w)
	}
	// Concurrent snapshots exercise the reader-side CAS lock as well.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, rec := range r.Snapshot() {
				if rec.Arg != rec.Seq {
					t.Errorf("torn record: seq=%#x arg=%#x", rec.Seq, rec.Arg)
				}
			}
		}
	}()
	wg.Wait()
	<-done
	recs := r.Snapshot()
	if len(recs) == 0 {
		t.Fatal("no records survived")
	}
	for _, rec := range recs {
		if rec.Arg != rec.Seq {
			t.Errorf("torn record: seq=%#x arg=%#x", rec.Seq, rec.Arg)
		}
		if uint64(rec.NID) != rec.Seq>>32 {
			t.Errorf("torn record: nid=%d seq=%#x", rec.NID, rec.Seq)
		}
	}
	t.Logf("capacity=%d survivors=%d conflicts=%d", 2*64, len(recs), r.Conflicts())
}

// TestRecordAllocs asserts the hot path never allocates — the core
// application-bypass requirement for the recorder (acceptance criterion).
func TestRecordAllocs(t *testing.T) {
	r := New(Config{Shards: 1, ShardSize: 1024})
	var seq uint64
	if n := testing.AllocsPerRun(1000, func() {
		seq++
		r.Record(StageDeliver, 1, 1, seq, 64)
	}); n != 0 {
		t.Fatalf("Record allocates %v per op, want 0", n)
	}
	// The package-level disabled path must also be alloc-free.
	if Active() != nil {
		t.Fatal("tracer unexpectedly enabled")
	}
	if n := testing.AllocsPerRun(1000, func() {
		Record(StageDeliver, 1, 1, 1, 64)
	}); n != 0 {
		t.Fatalf("disabled Record allocates %v per op, want 0", n)
	}
}

func TestGlobalEnableDisable(t *testing.T) {
	if Enabled() {
		t.Fatal("tracer enabled at test start")
	}
	r := Enable(Config{Shards: 1, ShardSize: 16})
	defer Disable()
	if !Enabled() || Active() != r {
		t.Fatal("Enable did not install the recorder")
	}
	Record(StageAck, 3, 4, 7, 9)
	if got := Disable(); got != r {
		t.Fatalf("Disable returned %p, want %p", got, r)
	}
	if Enabled() {
		t.Fatal("still enabled after Disable")
	}
	Record(StageAck, 3, 4, 8, 9) // must be a no-op, not a panic
	recs := r.Snapshot()
	if len(recs) != 1 || recs[0].Seq != 7 {
		t.Fatalf("snapshot = %+v, want one record with seq 7", recs)
	}
}

// TestChromeTraceSchema validates the export against the Trace Event
// Format: a traceEvents array whose entries all carry name/ph/pid/ts with
// ph one of the phases we emit, plus burn records becoming "X" spans.
func TestChromeTraceSchema(t *testing.T) {
	recs := []Entry{
		{TS: 100, NID: 0, PID: 1, Seq: 1, Stage: StageTxEnqueue, Arg: 4096},
		{TS: 200, NID: 0, PID: 0, Seq: 1, Stage: StageWireTx, Arg: 4176},
		{TS: 300, NID: 0, PID: 1, Seq: 1, Stage: StageMatchStart},
		{TS: 350, NID: 0, PID: 1, Seq: 1, Stage: StageMatchDone, Arg: 3},
		{TS: 400, NID: 0, PID: 1, Seq: 1, Stage: StageDeliver, Arg: 4096},
		{TS: 450, NID: 0, PID: 1, Seq: 1, Stage: StageEventPost, Arg: 1},
		{TS: 150, NID: 1, PID: 1, Seq: 0, Stage: StageAppBurnStart},
		{TS: 500, NID: 1, PID: 1, Seq: 0, Stage: StageAppBurnEnd},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TS   *float64        `json:"ts"`
			Dur  float64         `json:"dur"`
			PID  *uint32         `json:"pid"`
			TID  *uint64         `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	phases := map[string]bool{"X": true, "i": true, "M": true}
	sawBurn, sawSpan, sawInstant := false, false, false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" {
			t.Errorf("event with empty name: %+v", ev)
		}
		if !phases[ev.Ph] {
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.Ph != "M" && ev.TS == nil {
			t.Errorf("non-metadata event %q missing ts", ev.Name)
		}
		if ev.PID == nil {
			t.Errorf("event %q missing pid", ev.Name)
		}
		if ev.Name == "compute burn" && ev.Ph == "X" {
			sawBurn = true
			if ev.Dur != 0.35 { // (500-150) ns = 0.35 µs
				t.Errorf("compute burn dur = %v µs, want 0.35", ev.Dur)
			}
		}
		if ev.Ph == "X" && strings.HasPrefix(ev.Name, "msg ") {
			sawSpan = true
		}
		if ev.Ph == "i" && ev.Name == "match-done" {
			sawInstant = true
		}
	}
	if !sawBurn {
		t.Error("no compute burn X event")
	}
	if !sawSpan {
		t.Error("no message span X event")
	}
	if !sawInstant {
		t.Error("no match-done instant")
	}
}

func TestWriteDump(t *testing.T) {
	recs := []Entry{
		{TS: 200, NID: 1, PID: 1, Seq: 2, Stage: StageDeliver, Arg: 64},
		{TS: 100, NID: 0, PID: 1, Seq: 2, Stage: StageTxEnqueue, Arg: 64},
	}
	var buf bytes.Buffer
	if err := WriteDump(&buf, recs); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "stage=tx-enqueue") {
		t.Errorf("dump not TS-sorted: first line %q", lines[0])
	}
	if !strings.Contains(lines[1], "stage=deliver") {
		t.Errorf("second line %q", lines[1])
	}
}

func TestStageString(t *testing.T) {
	if StageMatchDone.String() != "match-done" {
		t.Errorf("StageMatchDone = %q", StageMatchDone)
	}
	if Stage(0).String() != "unknown" || Stage(200).String() != "unknown" {
		t.Error("out-of-range stages should stringify as unknown")
	}
}

// BenchmarkTraceRecord measures the hot-path cost. The Enabled variant is
// the acceptance-criterion number (≤ ~50 ns/op, 0 allocs/op); Disabled is
// the cost every delivery path pays when no one is tracing.
func BenchmarkTraceRecord(b *testing.B) {
	b.Run("Enabled", func(b *testing.B) {
		Enable(Config{})
		defer Disable()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Record(StageDeliver, 1, 1, uint64(i), 64)
		}
	})
	b.Run("Disabled", func(b *testing.B) {
		Disable()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Record(StageDeliver, 1, 1, uint64(i), 64)
		}
	})
}
