package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Exporters run off the hot path (after Disable, or on a snapshot) and are
// free to allocate and block — portalsvet's bypassviolation check flags
// them if they ever appear on a delivery path.

// chromeEvent is one Trace Event Format entry
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// ts/dur are microseconds; pid/tid pick the Perfetto track.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  uint32         `json:"pid"`
	TID  uint64         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type spanKey struct {
	nid uint32
	pid uint32
	seq uint64
}

// tid folds (PID, Seq) into one Perfetto thread track per span so a
// message's instants line up on one row under its node's process.
func (k spanKey) tid() uint64 { return uint64(k.pid)*1_000_000 + k.seq%1_000_000 }

func usec(ns int64) float64 { return float64(ns) / 1000.0 }

// WriteChromeTrace renders records as Chrome Trace Event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Each (NID, PID, seq) span
// becomes an "X" duration event from its first to last record with an "i"
// instant per stage; burn-start/burn-end pairs become "compute burn"
// duration events. Nodes map to Perfetto processes, spans to threads.
func WriteChromeTrace(w io.Writer, recs []Entry) error {
	byKey := make(map[spanKey][]Entry)
	var keys []spanKey
	for _, r := range recs {
		k := spanKey{nid: r.NID, pid: r.PID, seq: r.Seq}
		if _, ok := byKey[k]; !ok {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], r)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.nid != b.nid {
			return a.nid < b.nid
		}
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		return a.seq < b.seq
	})

	var evs []chromeEvent
	seenNode := make(map[uint32]bool)
	for _, k := range keys {
		if !seenNode[k.nid] {
			seenNode[k.nid] = true
			evs = append(evs, chromeEvent{
				Name: "process_name", Ph: "M", PID: k.nid,
				Args: map[string]any{"name": fmt.Sprintf("node %d", k.nid)},
			})
		}
		group := byKey[k]
		sortRecords(group)
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", PID: k.nid, TID: k.tid(),
			Args: map[string]any{"name": spanName(k, group)},
		})
		evs = append(evs, spanEvents(k, group)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{DisplayTimeUnit: "ns", TraceEvents: evs})
}

func spanName(k spanKey, group []Entry) string {
	for _, r := range group {
		if r.Stage == StageAppBurnStart || r.Stage == StageAppBurnEnd {
			return fmt.Sprintf("burn %d.%d iter %d", k.nid, k.pid, k.seq)
		}
	}
	if k.pid == 0 {
		return fmt.Sprintf("wire %d pkt %d", k.nid, k.seq)
	}
	return fmt.Sprintf("msg %d.%d #%d", k.nid, k.pid, k.seq)
}

func spanEvents(k spanKey, group []Entry) []chromeEvent {
	var evs []chromeEvent
	// Burn pairs render as named duration events; everything else renders
	// as one span-wide "X" plus per-stage instants.
	var burnStart *Entry
	var first, last int64
	havePath := false
	for i := range group {
		r := group[i]
		switch r.Stage {
		case StageAppBurnStart:
			burnStart = &group[i]
		case StageAppBurnEnd:
			start := r.TS
			if burnStart != nil {
				start = burnStart.TS
				burnStart = nil
			}
			evs = append(evs, chromeEvent{
				Name: "compute burn", Cat: "app", Ph: "X",
				TS: usec(start), Dur: usec(r.TS - start),
				PID: k.nid, TID: k.tid(),
				Args: map[string]any{"iter": r.Seq},
			})
		default:
			if !havePath {
				first = r.TS
				havePath = true
			}
			last = r.TS
			evs = append(evs, chromeEvent{
				Name: r.Stage.String(), Cat: "portals", Ph: "i",
				TS: usec(r.TS), PID: k.nid, TID: k.tid(), S: "t",
				Args: map[string]any{"arg": r.Arg, "seq": r.Seq},
			})
		}
	}
	// A burn-start with no matching end (snapshot taken mid-burn) still
	// deserves a mark.
	if burnStart != nil {
		evs = append(evs, chromeEvent{
			Name: "burn-start", Cat: "app", Ph: "i",
			TS: usec(burnStart.TS), PID: k.nid, TID: k.tid(), S: "t",
		})
	}
	if havePath {
		span := chromeEvent{
			Name: spanName(k, group), Cat: "portals", Ph: "X",
			TS: usec(first), Dur: usec(last - first),
			PID: k.nid, TID: k.tid(),
			Args: map[string]any{"records": len(group)},
		}
		// Perfetto hides zero-duration X events; give single-record spans a
		// sliver of width.
		if span.Dur == 0 {
			span.Dur = 0.001
		}
		evs = append([]chromeEvent{span}, evs...)
	}
	return evs
}

// WriteDump renders records as human-readable text, one line per record,
// ordered by timestamp.
func WriteDump(w io.Writer, recs []Entry) error {
	sorted := make([]Entry, len(recs))
	copy(sorted, recs)
	sortRecords(sorted)
	for _, r := range sorted {
		_, err := fmt.Fprintf(w, "t=+%dns node=%d pid=%d seq=%d stage=%s arg=%d\n",
			r.TS, r.NID, r.PID, r.Seq, r.Stage, r.Arg)
		if err != nil {
			return err
		}
	}
	return nil
}
