package trace

import "sync/atomic"

// active is the process-wide recorder. Instrumentation sites call the
// package-level Enabled/Record so that a disabled tracer costs exactly one
// atomic pointer load and a predicted branch.
var active atomic.Pointer[Recorder]

// Enable installs a fresh recorder built from cfg and returns it. Any
// previous recorder is detached (its records remain snapshot-able by
// whoever holds the pointer).
func Enable(cfg Config) *Recorder {
	r := New(cfg)
	active.Store(r)
	return r
}

// Disable detaches the active recorder, if any, and returns it.
func Disable() *Recorder {
	return active.Swap(nil)
}

// Active returns the installed recorder, or nil.
func Active() *Recorder { return active.Load() }

// Enabled reports whether a recorder is installed. Instrumentation sites
// with several Records (or any argument computation) should hoist one
// Enabled() check so the disabled cost stays a single load+branch.
func Enabled() bool { return active.Load() != nil }

// Record appends to the active recorder; a no-op when tracing is disabled.
//
//lint:noalloc instrumentation sites sit inside noalloc delivery code
func Record(stage Stage, nid, pid uint32, seq, arg uint64) {
	if r := active.Load(); r != nil {
		r.Record(stage, nid, pid, seq, arg)
	}
}
