package metrics

import (
	"bytes"
	"expvar"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("portals_test_total", "help text", L("node", "1"))
	c.Inc()
	c.Add(4)
	c.Add(-7) // monotone: ignored
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("portals_test_depth", "", L("lane", "0"))
	g.Set(9)
	g.Add(-3)
	if g.Value() != 6 {
		t.Fatalf("gauge = %d, want 6", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 8, -5} {
		h.Observe(v)
	}
	h.ObserveDuration(3 * time.Nanosecond)
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 17 { // -5 clamps to 0
		t.Fatalf("sum = %d, want 17", h.Sum())
	}
	// bucket 0: v==0 (two: 0 and clamped -5); bucket 1: v==1;
	// bucket 2: v in [2,3] (three: 2, 3, 3ns); bucket 4: v==8.
	want := map[int]int64{0: 2, 1: 1, 2: 3, 4: 1}
	for i := range h.buckets {
		if got := h.buckets[i].Load(); got != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("portals_msgs_total", "messages", L("node", "1", "dir", "rx"))
	c.Add(3)
	h := r.Histogram("portals_walk_steps", "match walk length", nil)
	h.Observe(1)
	h.Observe(5)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP portals_msgs_total messages\n",
		"# TYPE portals_msgs_total counter\n",
		`portals_msgs_total{node="1",dir="rx"} 3` + "\n",
		"# TYPE portals_walk_steps histogram\n",
		`portals_walk_steps_bucket{le="1"} 1` + "\n",
		`portals_walk_steps_bucket{le="7"} 2` + "\n",
		`portals_walk_steps_bucket{le="+Inf"} 2` + "\n",
		"portals_walk_steps_sum 6\n",
		"portals_walk_steps_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestReplaceOnDuplicate: re-registering the same (name, labels) replaces
// the collector — rebuilding a Machine across experiment iterations must
// not error or double-count.
func TestReplaceOnDuplicate(t *testing.T) {
	r := NewRegistry()
	old := r.Counter("portals_dup_total", "", L("node", "1"))
	old.Add(100)
	fresh := r.Counter("portals_dup_total", "", L("node", "1"))
	fresh.Add(7)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `portals_dup_total{node="1"} 7`) {
		t.Errorf("replacement did not win:\n%s", out)
	}
	if strings.Count(out, "portals_dup_total{") != 1 {
		t.Errorf("duplicate series emitted:\n%s", out)
	}
}

// TestFuncCollectors: existing atomic stats register as views with no
// change to the structs that own them.
func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	var recv atomic.Int64
	r.CounterFunc("portals_recv_total", "", nil, recv.Load)
	recv.Store(42)
	var depth atomic.Int64
	r.GaugeFunc("portals_lane_depth", "", L("lane", "2"), depth.Load)
	depth.Store(-3)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "portals_recv_total 42\n") {
		t.Errorf("counter view:\n%s", out)
	}
	if !strings.Contains(out, `portals_lane_depth{lane="2"} -3`) {
		t.Errorf("gauge view:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("portals_esc_total", "", L("path", "a\"b\\c\nd"))
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(buf.String(), `path="a\"b\\c\nd"`) {
		t.Errorf("escaping wrong:\n%s", buf.String())
	}
}

func TestLPanicsOnOddCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("L with odd arg count did not panic")
		}
	}()
	L("key")
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("portals_expvar_total", "", nil)
	c.Add(11)
	r.PublishExpvar("portals_test_registry")
	r.PublishExpvar("portals_test_registry") // dup name: no panic
	v := expvar.Get("portals_test_registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	if !strings.Contains(v.String(), `"portals_expvar_total":11`) {
		t.Errorf("expvar value = %s", v.String())
	}
}

// TestHotPathAllocs: Add/Observe are delivery-path calls and must never
// allocate.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("portals_alloc_total", "", nil)
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(17)
	}); n != 0 {
		t.Fatalf("hot path allocates %v per op, want 0", n)
	}
}
