// Package metrics is a dependency-free counter/gauge/histogram registry
// with Prometheus text-format exposition and optional expvar publishing.
//
// Collectors are plain structs of sync/atomic values: Add/Set/Observe on a
// hot path is a single atomic RMW, never a lock, never an allocation, so
// they are safe to touch from delivery-engine goroutines (§5.1 application
// bypass — see docs/LINT.md). The Registry itself is mutex-guarded and is
// only touched at registration and exposition time, both off the hot path.
//
// Existing per-layer stats structs (internal/stats, simnet, rtscts, nicsim)
// keep their APIs and register *views* of their atomics via CounterFunc /
// GaugeFunc, so registration adds zero cost to the paths that bump them.
package metrics

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value dimension attached to a series.
type Label struct {
	Key   string
	Value string
}

// Labels is an ordered label set. Use L to build one.
type Labels []Label

// L builds a Labels from alternating key, value strings. It panics on an
// odd count — label sets are static, authored in code, so this is a
// programming error, not a runtime condition.
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("metrics.L: odd number of key/value strings")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	return ls
}

// With returns a copy of ls with extra labels appended.
func (ls Labels) With(extra Labels) Labels {
	out := make(Labels, 0, len(ls)+len(extra))
	out = append(out, ls...)
	out = append(out, extra...)
	return out
}

// key returns a canonical (sorted) form used to identify a series within a
// family.
func (ls Labels) key() string {
	if len(ls) == 0 {
		return ""
	}
	sorted := make(Labels, len(ls))
	copy(sorted, ls)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that may go up or down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of log2 buckets: bucket i counts observations v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i-1] (bucket 0 is v == 0).
// 65 covers every uint64.
const histBuckets = 65

// Histogram is a log2-bucketed histogram. Observe is a bucket-index
// computation plus three atomic adds — no locks, no allocation — so it is
// safe on delivery paths. Bucket i has the inclusive upper bound 2^i - 1.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an upper bound on the q-quantile (0 < q ≤ 1) of the
// observed values: the inclusive upper bound (2^i − 1) of the smallest
// bucket whose cumulative count reaches ⌈q·count⌉. Resolution is the log2
// bucket width — a factor of two — which is the right fidelity for
// latency-under-overload reporting (cmd/swarm's p50/p99/p999): the
// interesting signal is orders of magnitude, not microseconds. Returns 0
// with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	buckets, _, count := h.snapshot()
	if count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return math.MaxInt64
			}
			return int64(1)<<uint(i) - 1
		}
	}
	return math.MaxInt64
}

// snapshot returns a consistent-enough copy for exposition (each field is
// individually atomic; cross-field skew is acceptable for monitoring).
func (h *Histogram) snapshot() (buckets [histBuckets]int64, sum, count int64) {
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return buckets, h.sum.Load(), h.count.Load()
}

// kind is the exposition type of a family.
type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "untyped"
}

// collector reads the current value(s) of one series.
type collector struct {
	fn   func() int64 // counter/gauge value source
	hist *Histogram   // histogramKind only
}

type series struct {
	labels Labels
	col    collector
}

type family struct {
	name  string
	help  string
	kind  kind
	order []string           // series insertion order (label keys)
	byKey map[string]*series // label key -> series
}

// Registry holds metric families. Registration replaces on duplicate
// (same name + label set), so re-registering a rebuilt layer — e.g. a fresh
// Machine per experiment iteration — is last-writer-wins rather than an
// error or a panic.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry used by cmd-level -metrics flags.
var Default = NewRegistry()

// Registerer is implemented by layers that can attach their stats to a
// registry. Labels identify the instance (node, pid, transport, ...).
type Registerer interface {
	RegisterMetrics(r *Registry, ls Labels)
}

func (r *Registry) register(name, help string, k kind, ls Labels, col collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, byKey: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	key := ls.key()
	s, ok := f.byKey[key]
	if !ok {
		s = &series{labels: ls}
		f.byKey[key] = s
		f.order = append(f.order, key)
	}
	s.col = col
}

// Counter registers (or replaces) a counter series and returns it.
func (r *Registry) Counter(name, help string, ls Labels) *Counter {
	c := &Counter{}
	r.CounterFunc(name, help, ls, c.Value)
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// exposition time — the way existing atomic stats structs register without
// changing their hot paths.
func (r *Registry) CounterFunc(name, help string, ls Labels, fn func() int64) {
	r.register(name, help, counterKind, ls, collector{fn: fn})
}

// Gauge registers (or replaces) a gauge series and returns it.
func (r *Registry) Gauge(name, help string, ls Labels) *Gauge {
	g := &Gauge{}
	r.GaugeFunc(name, help, ls, g.Value)
	return g
}

// GaugeFunc registers a gauge series whose value is read from fn at
// exposition time.
func (r *Registry) GaugeFunc(name, help string, ls Labels, fn func() int64) {
	r.register(name, help, gaugeKind, ls, collector{fn: fn})
}

// Histogram registers (or replaces) a histogram series and returns it.
func (r *Registry) Histogram(name, help string, ls Labels) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, help, ls, h)
	return h
}

// RegisterHistogram attaches an existing histogram (e.g. one owned by a
// layer's stats struct) to the registry.
func (r *Registry) RegisterHistogram(name, help string, ls Labels, h *Histogram) {
	r.register(name, help, histogramKind, ls, collector{hist: h})
}

// sample is one rendered series, captured under the lock and formatted
// outside it.
type sample struct {
	family  string
	help    string
	kind    kind
	labels  Labels
	value   int64
	buckets [histBuckets]int64
	sum     int64
	count   int64
}

func (r *Registry) collect() []sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []sample
	for _, name := range r.order {
		f := r.families[name]
		for _, key := range f.order {
			s := f.byKey[key]
			smp := sample{family: f.name, help: f.help, kind: f.kind, labels: s.labels}
			if f.kind == histogramKind {
				smp.buckets, smp.sum, smp.count = s.col.hist.snapshot()
			} else {
				smp.value = s.col.fn()
			}
			out = append(out, smp)
		}
	}
	return out
}

func writeLabels(b *strings.Builder, ls Labels, extra Label) {
	if len(ls) == 0 && extra.Key == "" {
		return
	}
	b.WriteByte('{')
	first := true
	for _, l := range ls {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extra.Key != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extra.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extra.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4). It snapshots under the registry lock and formats/writes
// outside it, so a slow writer never stalls registration.
func (r *Registry) WriteText(w io.Writer) error {
	samples := r.collect()
	var b strings.Builder
	lastFamily := ""
	for _, s := range samples {
		if s.family != lastFamily {
			lastFamily = s.family
			if s.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.family, s.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.family, s.kind)
		}
		switch s.kind {
		case histogramKind:
			cum := int64(0)
			top := 0
			for i, n := range s.buckets {
				if n != 0 {
					top = i
				}
			}
			for i := 0; i <= top; i++ {
				cum += s.buckets[i]
				le := "0"
				if i > 0 {
					le = strconv.FormatUint(1<<uint(i)-1, 10)
				}
				b.WriteString(s.family)
				b.WriteString("_bucket")
				writeLabels(&b, s.labels, Label{Key: "le", Value: le})
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(cum, 10))
				b.WriteByte('\n')
			}
			b.WriteString(s.family)
			b.WriteString("_bucket")
			writeLabels(&b, s.labels, Label{Key: "le", Value: "+Inf"})
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(s.count, 10))
			b.WriteByte('\n')
			b.WriteString(s.family)
			b.WriteString("_sum")
			writeLabels(&b, s.labels, Label{})
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(s.sum, 10))
			b.WriteByte('\n')
			b.WriteString(s.family)
			b.WriteString("_count")
			writeLabels(&b, s.labels, Label{})
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(s.count, 10))
			b.WriteByte('\n')
		default:
			b.WriteString(s.family)
			writeLabels(&b, s.labels, Label{})
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(s.value, 10))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// expvarPublished tracks names already handed to expvar.Publish, which
// panics on duplicates; republishing the same registry name is a no-op.
var (
	expvarMu        sync.Mutex
	expvarPublished = make(map[string]bool)
)

// PublishExpvar exposes the registry under the given expvar name as a
// map of "family{labels}" -> value (histograms expose _sum and _count).
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any {
		out := make(map[string]int64)
		for _, s := range r.collect() {
			var b strings.Builder
			b.WriteString(s.family)
			writeLabels(&b, s.labels, Label{})
			switch s.kind {
			case histogramKind:
				out[b.String()+"_sum"] = s.sum
				out[b.String()+"_count"] = s.count
			default:
				out[b.String()] = s.value
			}
		}
		return out
	}))
}
