package eventq

import (
	"sync"
	"testing"

	"repro/internal/types"
)

func TestPostIfSpace(t *testing.T) {
	q := New(2)
	if !q.PostIfSpace(Event{MLength: 1}) {
		t.Fatal("post into empty queue refused")
	}
	if !q.PostIfSpace(Event{MLength: 2}) {
		t.Fatal("post into half-full queue refused")
	}
	if q.PostIfSpace(Event{MLength: 3}) {
		t.Fatal("post into full queue accepted")
	}
	ev, err := q.Get()
	if err != nil || ev.MLength != 1 {
		t.Fatalf("Get = %v, %v", ev.MLength, err)
	}
	if !q.PostIfSpace(Event{MLength: 4}) {
		t.Fatal("post after drain refused")
	}
	for _, want := range []uint64{2, 4} {
		ev, err := q.Get()
		if err != nil || ev.MLength != want {
			t.Fatalf("Get = %v, %v; want %d", ev.MLength, err, want)
		}
	}
}

// TestPostIfSpaceLostSpaceInterleaving is the TOCTOU regression test: with
// a HasSpace-then-Post pair, two producers racing for the queue's single
// free slot can both pass the check, and the loser overwrites an
// unconsumed event (the consumer sees ErrEQDropped). The atomic
// reservation must admit exactly one and never overrun.
func TestPostIfSpaceLostSpaceInterleaving(t *testing.T) {
	const rounds = 2000
	for r := 0; r < rounds; r++ {
		q := New(2)
		q.Post(Event{}) // exactly one slot left
		var wg sync.WaitGroup
		results := make([]bool, 2)
		for i := range results {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = q.PostIfSpace(Event{})
			}(i)
		}
		wg.Wait()
		if results[0] == results[1] {
			t.Fatalf("round %d: PostIfSpace results %v, want exactly one success", r, results)
		}
		for {
			_, err := q.Get()
			if err == types.ErrEQEmpty {
				break
			}
			if err == types.ErrEQDropped {
				t.Fatalf("round %d: queue overran — space was lost to the race", r)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestPostIfSpaceClosed(t *testing.T) {
	q := New(1)
	q.Close()
	// Matches Post's closed semantics: the event is silently discarded,
	// not reported as a full queue.
	if !q.PostIfSpace(Event{}) {
		t.Fatal("PostIfSpace on closed queue reported full")
	}
	if _, err := q.Get(); err != types.ErrClosed {
		t.Fatalf("Get after close = %v, want ErrClosed", err)
	}
}

func TestReservePublish(t *testing.T) {
	q := New(4)
	r, ok := q.ReserveIfSpace()
	if !ok {
		t.Fatal("reserve refused on empty queue")
	}
	if q.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (reservation counts as produced)", q.Pending())
	}
	done := make(chan Event, 1)
	go func() {
		ev, err := q.Wait()
		if err != nil {
			t.Errorf("Wait: %v", err)
		}
		done <- ev
	}()
	r.Publish(Event{MLength: 9})
	ev := <-done
	if ev.MLength != 9 || ev.Sequence != 0 {
		t.Fatalf("event = %+v", ev)
	}
	// The zero reservation is inert.
	var zero Reservation
	zero.Publish(Event{MLength: 1})
	if q.Pending() != 0 {
		t.Fatalf("inert Publish produced an event")
	}
}

// TestConcurrentPostUniqueSequences drives the lock-free fast path from
// many producers: every post must land in a distinct slot with a distinct
// sequence number.
func TestConcurrentPostUniqueSequences(t *testing.T) {
	const producers = 8
	const per = 500
	q := New(producers * per)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Post(Event{Initiator: types.ProcessID{NID: types.NID(p), PID: types.PID(i)}})
			}
		}(p)
	}
	wg.Wait()
	seen := make(map[uint64]bool, producers*per)
	for i := 0; i < producers*per; i++ {
		ev, err := q.Get()
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if seen[ev.Sequence] {
			t.Fatalf("duplicate sequence %d", ev.Sequence)
		}
		seen[ev.Sequence] = true
	}
	if _, err := q.Get(); err != types.ErrEQEmpty {
		t.Fatalf("queue not empty after drain: %v", err)
	}
}

// TestConcurrentOverrun hammers a tiny queue through the overwrite slow
// path with concurrent fast producers and checks the invariants: the
// consumer is told about the overrun exactly once, surviving events come
// out in ascending sequence order, and exactly capacity events survive.
func TestConcurrentOverrun(t *testing.T) {
	const producers = 4
	const per = 1000
	q := New(4)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Post(Event{})
			}
		}()
	}
	wg.Wait()
	ev, err := q.Get()
	if err != types.ErrEQDropped {
		t.Fatalf("first Get after overrun = %v, want ErrEQDropped", err)
	}
	prev := ev.Sequence
	count := 1
	for {
		ev, err := q.Get()
		if err == types.ErrEQEmpty {
			break
		}
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if ev.Sequence <= prev {
			t.Fatalf("sequence went backwards: %d after %d", ev.Sequence, prev)
		}
		prev = ev.Sequence
		count++
	}
	if count != q.Cap() {
		t.Fatalf("survivors = %d, want %d", count, q.Cap())
	}
}
