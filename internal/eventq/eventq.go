// Package eventq implements Portals event queues.
//
// §4.8: "Event queues are circular, which prevents indexing out of bounds.
// The higher level protocol needs to ensure that there are enough event
// slots and the rate of event consumption is able to keep up with the rate
// of event production to avoid missing events."
//
// Producers (the delivery engine) never block: posting into a full queue
// overwrites the oldest unconsumed slot, and the consumer is told about the
// overrun through ErrEQDropped on its next Get — the exact failure mode the
// spec gives higher-level protocols to design around.
//
// The producer fast path is lock-free so concurrent delivery lanes posting
// to one queue do not serialize (docs/PERF.md §6): Post reserves a position
// with one CAS on the produced counter and stamps the slot seqlock-style —
// writeStamp while the payload is in flight, doneStamp once it is visible.
// The mutex is kept only for the consumer, the full-queue overwrite path,
// and Close.
package eventq

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/metrics"
	"repro/internal/obs/trace"
	"repro/internal/types"
)

// Event records one completed Portals operation (§4.8). Which fields are
// meaningful depends on Type; Sequence is a per-queue monotone counter.
type Event struct {
	Type      types.EventType
	Initiator types.ProcessID // who initiated the operation (for PUT/GET at the target)
	PtlIndex  types.PtlIndex
	MatchBits types.MatchBits
	RLength   uint64 // length requested on the wire
	MLength   uint64 // manipulated length: bytes actually moved (§4.7)
	Offset    uint64 // offset within the descriptor at which data landed
	MD        types.Handle
	UserPtr   any // the user_ptr of the memory descriptor involved
	Sequence  uint64
	// MsgSeq is the wire header's per-initiator message sequence number
	// (wire.Header.Seq); together with Initiator it keys the message's span
	// in the internal/obs/trace flight recorder. Zero for events that do not
	// belong to a traced message.
	MsgSeq uint64
}

// slot is one ring cell. seq carries the seqlock stamp for the cell's
// current occupant: writeStamp(p) while position p's event is being
// written, doneStamp(p) once it is complete. Zero means never written.
//
//lint:seqlock seq
type slot struct {
	seq atomic.Uint64
	ev  Event
}

func writeStamp(p uint64) uint64 { return 2*p + 1 }
func doneStamp(p uint64) uint64  { return 2*p + 2 }

// Queue is a fixed-capacity circular event queue. All methods are safe for
// concurrent use by one or more producers and consumers.
//
// Blocking consumers are woken through a one-token notify channel rather
// than a condition variable so that Poll can honour its timeout without
// sleep-polling (which would put milliseconds of scheduler latency on the
// event path).
//
// Invariant: produced - consumed ≤ len(ring) at all times. The lock-free
// fast path only claims a position when there is space, which means the
// slot it writes was already consumed — so fast producers never overwrite
// live data and never contend with the consumer. Overwriting (the §4.8
// circular behaviour) happens only on the mutex slow path, which advances
// consumed past the victim first.
type Queue struct {
	ring     []slot
	produced atomic.Uint64 //lint:guardedby atomic
	consumed atomic.Uint64 //lint:guardedby atomic
	closed   atomic.Bool   //lint:guardedby atomic

	mu sync.Mutex // consumer, overwrite, and Close paths
	// overrun records that a Post overwrote unconsumed events since the
	// last Get.
	//lint:guardedby mu
	overrun bool
	notify  chan struct{} // one-token wakeup; consumers retry Get on wake
	done    chan struct{} // closed by Close
}

// New allocates a queue with the given number of event slots. Sizes below
// one are raised to one.
func New(slots int) *Queue {
	if slots < 1 {
		slots = 1
	}
	return &Queue{
		ring:   make([]slot, slots),
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// Cap returns the number of event slots.
func (q *Queue) Cap() int { return len(q.ring) }

// Post appends an event. It never blocks on the application and never
// fails; if the queue is full the oldest unconsumed event is overwritten
// (circular semantics). Post on a closed queue is a no-op.
//
//lint:noalloc the delivery engine posts events on every message
func (q *Queue) Post(ev Event) {
	if q.closed.Load() {
		return
	}
	n := uint64(len(q.ring))
	for {
		pos := q.produced.Load()
		if pos-q.consumed.Load() >= n {
			q.postFull(ev)
			return
		}
		if q.produced.CompareAndSwap(pos, pos+1) {
			q.publish(pos, ev)
			return
		}
	}
}

// publish writes position pos's event into its slot and makes it visible.
// The caller owns pos (it won the CAS, or holds mu on the overwrite path).
func (q *Queue) publish(pos uint64, ev Event) {
	sl := &q.ring[pos%uint64(len(q.ring))]
	sl.seq.Store(writeStamp(pos))
	ev.Sequence = pos
	sl.ev = ev
	sl.seq.Store(doneStamp(pos))
	posted.Add(1)
	trace.Record(trace.StageEventPost,
		uint32(ev.Initiator.NID), uint32(ev.Initiator.PID), ev.MsgSeq, uint64(ev.Type))
	q.wake()
}

func (q *Queue) wake() {
	select {
	case q.notify <- struct{}{}:
	default: // a wakeup is already pending; the woken consumer will drain
	}
}

// postFull is the full-queue slow path: under mu, drop the oldest
// unconsumed event to make room, then claim a position like the fast path.
// The CAS can still lose to concurrent fast producers (they do not take
// mu), in which case the freed slot went to one of them and we drop again.
func (q *Queue) postFull(ev Event) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed.Load() {
		return
	}
	n := uint64(len(q.ring))
	for {
		pos := q.produced.Load()
		if pos-q.consumed.Load() >= n {
			// Drop the oldest pending event. Its writer may still be in
			// flight (a reservation between stamps); wait for it so the
			// victim's slot write cannot tear ours. Holding mu here is fine:
			// publishing never takes mu.
			c := q.consumed.Load()
			sl := &q.ring[c%n]
			for sl.seq.Load() != doneStamp(c) {
				runtime.Gosched()
			}
			q.consumed.Store(c + 1)
			q.overrun = true
			overwritten.Add(1)
		}
		if q.produced.CompareAndSwap(pos, pos+1) {
			q.publish(pos, ev)
			return
		}
	}
}

// PostIfSpace posts ev only if doing so would not overwrite an unconsumed
// event, reporting whether the event was (logically) posted. The space
// check and the post are one atomic reservation — unlike a HasSpace/Post
// pair, two racing PostIfSpace calls for the last slot cannot both succeed.
// On a closed queue it returns true and discards the event, matching
// Post's no-op semantics.
//
//lint:noalloc ack/reply event posting rides the delivery path
func (q *Queue) PostIfSpace(ev Event) bool {
	r, ok := q.ReserveIfSpace()
	if !ok {
		return false
	}
	r.Publish(ev)
	return true
}

// Reservation is a claimed event slot awaiting its event. The zero value
// is inert (Publish is a no-op).
type Reservation struct {
	q      *Queue
	pos    uint64
	active bool
}

// ReserveIfSpace atomically claims the next event slot if the queue has
// space, so a caller can guarantee event delivery *before* performing the
// operation's side effects (the §4.8 reply rule: the reply is dropped —
// data unwritten — when the event queue is full). The reservation must be
// Published promptly: consumers and overwriting producers wait for it.
// On a closed queue it returns an inert reservation and ok=true, matching
// Post's closed no-op semantics.
//
//lint:noalloc slot reservation is a CAS loop on the delivery path
func (q *Queue) ReserveIfSpace() (r Reservation, ok bool) {
	if q.closed.Load() {
		return Reservation{}, true
	}
	n := uint64(len(q.ring))
	for {
		pos := q.produced.Load()
		if pos-q.consumed.Load() >= n {
			return Reservation{}, false
		}
		if q.produced.CompareAndSwap(pos, pos+1) {
			q.ring[pos%n].seq.Store(writeStamp(pos))
			return Reservation{q: q, pos: pos, active: true}, true
		}
	}
}

// Publish completes a reservation, making the event visible to consumers.
//
//lint:noalloc completes ReserveIfSpace on the delivery path
func (r Reservation) Publish(ev Event) {
	if !r.active {
		return
	}
	sl := &r.q.ring[r.pos%uint64(len(r.q.ring))]
	ev.Sequence = r.pos
	//lint:ignore seqlock the open stamp travels inside the Reservation: ReserveIfSpace stored writeStamp(pos) before returning, so this write happens inside the window the flow cannot see across the call boundary
	sl.ev = ev
	sl.seq.Store(doneStamp(r.pos))
	posted.Add(1)
	trace.Record(trace.StageEventPost,
		uint32(ev.Initiator.NID), uint32(ev.Initiator.PID), ev.MsgSeq, uint64(ev.Type))
	r.q.wake()
}

// HasSpace reports whether a Post right now would not overwrite an
// unconsumed event. It is advisory under concurrency — use PostIfSpace or
// ReserveIfSpace when the answer must stay true through a subsequent post.
func (q *Queue) HasSpace() bool {
	// consumed is loaded first: both counters are monotone, so this orders
	// the subtraction conservatively (never reports phantom space).
	c := q.consumed.Load()
	return q.produced.Load()-c < uint64(len(q.ring))
}

// Pending returns the number of unconsumed events (clamped to capacity).
func (q *Queue) Pending() int {
	c := q.consumed.Load()
	n := q.produced.Load() - c
	if n > uint64(len(q.ring)) {
		n = uint64(len(q.ring))
	}
	return int(n)
}

// Get removes and returns the oldest pending event without blocking.
//
// Errors: ErrEQEmpty if nothing is pending; ErrEQDropped if the producer
// lapped the consumer — in that case the returned event IS valid (it is the
// oldest event that survived) and the consumer has been resynchronized, so
// subsequent Gets behave normally. ErrClosed after Close once drained.
func (q *Queue) Get() (Event, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.getLocked()
}

//lint:requires mu
func (q *Queue) getLocked() (Event, error) {
	c := q.consumed.Load()
	if c == q.produced.Load() {
		if q.closed.Load() {
			return Event{}, types.ErrClosed
		}
		return Event{}, types.ErrEQEmpty
	}
	n := uint64(len(q.ring))
	sl := &q.ring[c%n]
	// The position is claimed but its event may still be in flight
	// (between stamps); wait for the publish. Publishing never takes mu,
	// so spinning under mu cannot deadlock.
	for sl.seq.Load() != doneStamp(c) {
		runtime.Gosched()
	}
	ev := sl.ev
	q.consumed.Store(c + 1)
	if q.overrun {
		// Overrun: older events were overwritten since the last Get.
		q.overrun = false
		return ev, types.ErrEQDropped
	}
	return ev, nil
}

// Wait blocks until an event is available (or the queue is closed) and
// returns it, with the same ErrEQDropped convention as Get.
func (q *Queue) Wait() (Event, error) {
	for {
		ev, err := q.Get()
		if err != types.ErrEQEmpty {
			return ev, err
		}
		select {
		case <-q.notify:
		case <-q.done:
			// Closed: one final Get decides between a late event and
			// ErrClosed.
		}
	}
}

// Poll waits up to d for an event. On timeout it returns ErrEQEmpty.
// A non-positive d makes Poll equivalent to Get.
func (q *Queue) Poll(d time.Duration) (Event, error) {
	if d <= 0 {
		return q.Get()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		ev, err := q.Get()
		if err != types.ErrEQEmpty {
			return ev, err
		}
		select {
		case <-q.notify:
		case <-q.done:
			if ev, err := q.Get(); err != types.ErrEQEmpty {
				return ev, err
			}
			return Event{}, types.ErrClosed
		case <-timer.C:
			return Event{}, types.ErrEQEmpty
		}
	}
}

// Close wakes all waiters. Pending events remain retrievable; once drained,
// Get and Wait return ErrClosed. A Post racing Close may still land; that
// is the same window a hardware event queue has.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed.Load() {
		q.mu.Unlock()
		return
	}
	q.closed.Store(true)
	q.mu.Unlock()
	close(q.done)
}

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool {
	return q.closed.Load()
}

// Process-wide event-ring telemetry. Package-level (rather than per-queue)
// because queues are created and torn down with every MD/ME binding; the
// interesting signal — how often the §4.8 circular overwrite fires — is
// global. Both bumps are single atomic adds on paths that already RMW.
var (
	posted      atomic.Int64 // events made visible (fast path + reservations)
	overwritten atomic.Int64 // unconsumed events dropped by the overwrite path
)

// RegisterMetrics exposes the package-wide event-ring counters.
func RegisterMetrics(r *metrics.Registry, ls metrics.Labels) {
	r.CounterFunc("portals_eventq_posted_total",
		"events made visible to consumers", ls, posted.Load)
	r.CounterFunc("portals_eventq_overwritten_total",
		"unconsumed events overwritten by the circular full-queue path (§4.8)", ls, overwritten.Load)
}
