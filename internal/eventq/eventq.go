// Package eventq implements Portals event queues.
//
// §4.8: "Event queues are circular, which prevents indexing out of bounds.
// The higher level protocol needs to ensure that there are enough event
// slots and the rate of event consumption is able to keep up with the rate
// of event production to avoid missing events."
//
// Producers (the delivery engine) never block: posting into a full queue
// overwrites the oldest unconsumed slot, and the consumer is told about the
// overrun through ErrEQDropped on its next Get — the exact failure mode the
// spec gives higher-level protocols to design around.
package eventq

import (
	"sync"
	"time"

	"repro/internal/types"
)

// Event records one completed Portals operation (§4.8). Which fields are
// meaningful depends on Type; Sequence is a per-queue monotone counter.
type Event struct {
	Type      types.EventType
	Initiator types.ProcessID // who initiated the operation (for PUT/GET at the target)
	PtlIndex  types.PtlIndex
	MatchBits types.MatchBits
	RLength   uint64 // length requested on the wire
	MLength   uint64 // manipulated length: bytes actually moved (§4.7)
	Offset    uint64 // offset within the descriptor at which data landed
	MD        types.Handle
	UserPtr   any // the user_ptr of the memory descriptor involved
	Sequence  uint64
}

// Queue is a fixed-capacity circular event queue. All methods are safe for
// concurrent use by one or more producers and consumers.
//
// Blocking consumers are woken through a one-token notify channel rather
// than a condition variable so that Poll can honour its timeout without
// sleep-polling (which would put milliseconds of scheduler latency on the
// event path).
type Queue struct {
	mu       sync.Mutex
	ring     []Event
	produced uint64 // events ever posted
	consumed uint64 // events ever handed to Get/Wait
	closed   bool
	notify   chan struct{} // one-token wakeup; consumers retry Get on wake
	done     chan struct{} // closed by Close
}

// New allocates a queue with the given number of event slots. Sizes below
// one are raised to one.
func New(slots int) *Queue {
	if slots < 1 {
		slots = 1
	}
	return &Queue{
		ring:   make([]Event, slots),
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// Cap returns the number of event slots.
func (q *Queue) Cap() int { return len(q.ring) }

// Post appends an event. It never blocks and never fails; if the queue is
// full the oldest unconsumed event is overwritten (circular semantics).
// Post on a closed queue is a no-op.
func (q *Queue) Post(ev Event) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	ev.Sequence = q.produced
	q.ring[q.produced%uint64(len(q.ring))] = ev
	q.produced++
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default: // a wakeup is already pending; the woken consumer will drain
	}
}

// HasSpace reports whether a Post right now would not overwrite an
// unconsumed event. The delivery engine uses this for the §4.8 reply rule:
// "a reply message will be dropped if ... the event queue in the memory
// descriptor has no space".
func (q *Queue) HasSpace() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.produced-q.consumed < uint64(len(q.ring))
}

// Pending returns the number of unconsumed events (clamped to capacity).
func (q *Queue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.produced - q.consumed
	if n > uint64(len(q.ring)) {
		n = uint64(len(q.ring))
	}
	return int(n)
}

// Get removes and returns the oldest pending event without blocking.
//
// Errors: ErrEQEmpty if nothing is pending; ErrEQDropped if the producer
// lapped the consumer — in that case the returned event IS valid (it is the
// oldest event that survived) and the consumer has been resynchronized, so
// subsequent Gets behave normally. ErrClosed after Close once drained.
func (q *Queue) Get() (Event, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.getLocked()
}

func (q *Queue) getLocked() (Event, error) {
	if q.consumed == q.produced {
		if q.closed {
			return Event{}, types.ErrClosed
		}
		return Event{}, types.ErrEQEmpty
	}
	n := uint64(len(q.ring))
	if q.produced-q.consumed > n {
		// Overrun: events in (consumed, produced-n) were overwritten.
		q.consumed = q.produced - n
		ev := q.ring[q.consumed%n]
		q.consumed++
		return ev, types.ErrEQDropped
	}
	ev := q.ring[q.consumed%n]
	q.consumed++
	return ev, nil
}

// Wait blocks until an event is available (or the queue is closed) and
// returns it, with the same ErrEQDropped convention as Get.
func (q *Queue) Wait() (Event, error) {
	for {
		ev, err := q.Get()
		if err != types.ErrEQEmpty {
			return ev, err
		}
		select {
		case <-q.notify:
		case <-q.done:
			// Closed: one final Get decides between a late event and
			// ErrClosed.
		}
	}
}

// Poll waits up to d for an event. On timeout it returns ErrEQEmpty.
// A non-positive d makes Poll equivalent to Get.
func (q *Queue) Poll(d time.Duration) (Event, error) {
	if d <= 0 {
		return q.Get()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		ev, err := q.Get()
		if err != types.ErrEQEmpty {
			return ev, err
		}
		select {
		case <-q.notify:
		case <-q.done:
			if ev, err := q.Get(); err != types.ErrEQEmpty {
				return ev, err
			}
			return Event{}, types.ErrClosed
		case <-timer.C:
			return Event{}, types.ErrEQEmpty
		}
	}
}

// Close wakes all waiters. Pending events remain retrievable; once drained,
// Get and Wait return ErrClosed.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.done)
}

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}
