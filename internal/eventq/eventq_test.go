package eventq

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/types"
)

func ev(seqHint uint64) Event {
	return Event{Type: types.EventPut, MLength: seqHint}
}

func TestEmptyGet(t *testing.T) {
	q := New(4)
	if _, err := q.Get(); !errors.Is(err, types.ErrEQEmpty) {
		t.Errorf("Get on empty = %v, want ErrEQEmpty", err)
	}
}

func TestFIFOOrder(t *testing.T) {
	q := New(8)
	for i := uint64(0); i < 5; i++ {
		q.Post(ev(i))
	}
	for i := uint64(0); i < 5; i++ {
		got, err := q.Get()
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got.MLength != i {
			t.Errorf("event %d out of order: got %d", i, got.MLength)
		}
		if got.Sequence != i {
			t.Errorf("sequence = %d, want %d", got.Sequence, i)
		}
	}
}

func TestCircularOverrun(t *testing.T) {
	q := New(4)
	for i := uint64(0); i < 10; i++ { // overruns by 6
		q.Post(ev(i))
	}
	got, err := q.Get()
	if !errors.Is(err, types.ErrEQDropped) {
		t.Fatalf("Get after overrun = %v, want ErrEQDropped", err)
	}
	if got.MLength != 6 {
		t.Errorf("oldest surviving event = %d, want 6", got.MLength)
	}
	// After resync the remaining events come out cleanly.
	for i := uint64(7); i < 10; i++ {
		got, err := q.Get()
		if err != nil {
			t.Fatalf("Get after resync: %v", err)
		}
		if got.MLength != i {
			t.Errorf("got %d, want %d", got.MLength, i)
		}
	}
	if _, err := q.Get(); !errors.Is(err, types.ErrEQEmpty) {
		t.Error("queue should be empty after drain")
	}
}

func TestHasSpace(t *testing.T) {
	q := New(2)
	if !q.HasSpace() {
		t.Error("new queue should have space")
	}
	q.Post(ev(0))
	q.Post(ev(1))
	if q.HasSpace() {
		t.Error("full queue reports space")
	}
	if _, err := q.Get(); err != nil {
		t.Fatal(err)
	}
	if !q.HasSpace() {
		t.Error("queue with one free slot reports no space")
	}
}

func TestPending(t *testing.T) {
	q := New(4)
	if q.Pending() != 0 {
		t.Error("new queue pending != 0")
	}
	q.Post(ev(0))
	q.Post(ev(1))
	if q.Pending() != 2 {
		t.Errorf("pending = %d, want 2", q.Pending())
	}
	for i := 0; i < 100; i++ {
		q.Post(ev(uint64(i)))
	}
	if q.Pending() != 4 {
		t.Errorf("pending after overrun = %d, want cap 4", q.Pending())
	}
}

func TestWaitBlocksUntilPost(t *testing.T) {
	q := New(4)
	done := make(chan Event, 1)
	go func() {
		got, err := q.Wait()
		if err != nil {
			t.Errorf("Wait: %v", err)
		}
		done <- got
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter block
	q.Post(ev(42))
	select {
	case got := <-done:
		if got.MLength != 42 {
			t.Errorf("waited event = %d, want 42", got.MLength)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake")
	}
}

func TestPollTimeout(t *testing.T) {
	q := New(4)
	start := time.Now()
	_, err := q.Poll(20 * time.Millisecond)
	if !errors.Is(err, types.ErrEQEmpty) {
		t.Errorf("Poll = %v, want ErrEQEmpty", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("Poll returned before timeout")
	}
}

func TestPollImmediate(t *testing.T) {
	q := New(4)
	q.Post(ev(7))
	got, err := q.Poll(time.Second)
	if err != nil || got.MLength != 7 {
		t.Errorf("Poll = %v/%v", got.MLength, err)
	}
}

func TestPollNonPositiveIsGet(t *testing.T) {
	q := New(4)
	if _, err := q.Poll(0); !errors.Is(err, types.ErrEQEmpty) {
		t.Errorf("Poll(0) = %v, want ErrEQEmpty", err)
	}
}

func TestCloseWakesWaiters(t *testing.T) {
	q := New(4)
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := q.Wait()
			errs <- err
		}()
	}
	time.Sleep(5 * time.Millisecond)
	q.Close()
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, types.ErrClosed) {
				t.Errorf("Wait after close = %v, want ErrClosed", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("waiter not woken by Close")
		}
	}
}

func TestCloseDrainsPendingFirst(t *testing.T) {
	q := New(4)
	q.Post(ev(1))
	q.Close()
	if got, err := q.Get(); err != nil || got.MLength != 1 {
		t.Errorf("Get pending after close = %v/%v", got.MLength, err)
	}
	if _, err := q.Get(); !errors.Is(err, types.ErrClosed) {
		t.Errorf("Get drained after close = %v, want ErrClosed", err)
	}
	if !q.Closed() {
		t.Error("Closed() = false")
	}
}

func TestPostAfterCloseIgnored(t *testing.T) {
	q := New(4)
	q.Close()
	q.Post(ev(1))
	if q.Pending() != 0 {
		t.Error("post after close was recorded")
	}
}

func TestTinyQueueSize(t *testing.T) {
	q := New(0) // raised to 1
	if q.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", q.Cap())
	}
	q.Post(ev(0))
	q.Post(ev(1)) // overwrites
	got, err := q.Get()
	if !errors.Is(err, types.ErrEQDropped) || got.MLength != 1 {
		t.Errorf("Get = %d/%v, want 1/ErrEQDropped", got.MLength, err)
	}
}

// Property: for any interleaving of n posts then full drain, the consumer
// sees the LAST min(n, cap) events in order.
func TestOverrunKeepsNewestProperty(t *testing.T) {
	f := func(nPosts uint8, capHint uint8) bool {
		c := int(capHint%16) + 1
		n := uint64(nPosts)
		q := New(c)
		for i := uint64(0); i < n; i++ {
			q.Post(ev(i))
		}
		want := n
		if want > uint64(c) {
			want = uint64(c)
		}
		first := n - want
		for i := uint64(0); i < want; i++ {
			got, err := q.Get()
			if err != nil && !errors.Is(err, types.ErrEQDropped) {
				return false
			}
			if got.MLength != first+i {
				return false
			}
		}
		_, err := q.Get()
		return errors.Is(err, types.ErrEQEmpty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New(1024)
	const producers, each = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				q.Post(ev(uint64(i)))
			}
		}()
	}
	// The consumer may be lapped (circular overwrite), so it tracks the
	// highest sequence seen rather than a raw count; sequences are assigned
	// in post order, so seeing the last one means the queue drained.
	done := make(chan uint64, 1)
	go func() {
		var maxSeq uint64
		for maxSeq < uint64(producers*each-1) {
			ev, err := q.Wait()
			if err != nil && !errors.Is(err, types.ErrEQDropped) {
				break
			}
			if ev.Sequence > maxSeq {
				maxSeq = ev.Sequence
			}
		}
		done <- maxSeq
	}()
	wg.Wait()
	select {
	case maxSeq := <-done:
		if maxSeq != uint64(producers*each-1) {
			t.Errorf("last sequence = %d, want %d", maxSeq, producers*each-1)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consumer stalled")
	}
}
