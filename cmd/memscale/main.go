// Command memscale regenerates the §4.1 memory-scaling argument (E5):
// unexpected-message memory under the Portals model (sized by application
// policy) versus a VIA-style per-connection model (grows linearly with
// the number of peers).
//
// Usage:
//
//	memscale [-credits 16] [-bufsize 32768] [-maxpeers 256]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/portals"
)

func main() {
	credits := flag.Int("credits", 16, "pre-posted receive buffers per VIA connection")
	bufSize := flag.Int("bufsize", 32*1024, "VIA eager buffer size in bytes")
	maxPeers := flag.Int("maxpeers", 256, "largest peer count to measure")
	flag.Parse()

	fmt.Printf("# Unexpected-message memory vs peers (E5, §4.1)\n")
	fmt.Printf("# VIA model: %d credits × %d B per connection; Portals: application-sized pool\n",
		*credits, *bufSize)
	fmt.Printf("%-8s %-16s %-16s\n", "peers", "portals(bytes)", "via(bytes)")
	for n := 2; n-1 <= *maxPeers; n *= 2 {
		m := portals.NewMachine(portals.Loopback())
		p, err := experiments.MemScale(m, n, mpi.Config{}, *credits, *bufSize)
		if cerr := m.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-8d %-16d %-16d\n", p.Peers, p.PortalsBytes, p.VIABytes)
	}
}
