// Command memscale regenerates the §4.1 memory-scaling argument (E5):
// unexpected-message memory under the Portals model (sized by application
// policy) versus a VIA-style per-connection model (grows linearly with
// the number of peers).
//
// Usage:
//
//	memscale [-credits 16] [-bufsize 32768] [-maxpeers 256]
//	memscale -gc [-entries 1000000]
//
// -gc switches to the PR-7 storage comparison: it populates N match-entry
// sized records first as individual heap allocations, then through the
// chunked typed arena (internal/arena) the engine uses, and measures what
// each layout costs the garbage collector — live heap objects and the wall
// time of a forced collection. The arena packs thousands of records into
// one allocation, so the collector traces chunks instead of a million
// separate objects.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/arena"
	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/portals"
)

// gcEntry approximates the engine's matchEntry footprint: a few scalar
// words plus pointer fields the collector must trace.
type gcEntry struct {
	matchBits, ignoreBits uint64
	offset, length        uint64
	next, prev            *gcEntry
	buf                   []byte
	gen                   uint32
}

// gcProbe builds a population of entries with build, then measures the
// collector against it: live heap objects and the average wall time of a
// forced GC (runtime.GC blocks until the cycle completes, so on a small
// host its wall time is dominated by the mark phase over the live set).
func gcProbe(build func(n int) []*gcEntry, n int) (objs uint64, gcWall time.Duration) {
	runtime.GC() // settle: free the previous population before measuring
	keep := build(n)
	runtime.GC() // complete a cycle with the population live before timing
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	objs = ms.HeapObjects
	const forced = 3
	start := time.Now()
	for i := 0; i < forced; i++ {
		runtime.GC()
	}
	gcWall = time.Since(start) / forced
	runtime.KeepAlive(keep)
	return objs, gcWall
}

func runGC(entries int) {
	heapBuild := func(n int) []*gcEntry {
		s := make([]*gcEntry, n)
		for i := range s {
			s[i] = &gcEntry{gen: uint32(i)}
		}
		return s
	}
	arenaBuild := func(n int) []*gcEntry {
		var a arena.Arena[gcEntry]
		s := make([]*gcEntry, n)
		for i := range s {
			e := a.Get()
			e.gen = uint32(i)
			s[i] = e
		}
		return s
	}
	fmt.Printf("# GC cost of %d live match-entry records, per storage layout (PR 7, docs/PERF.md §7)\n", entries)
	fmt.Printf("%-10s %-14s %-14s\n", "layout", "heap-objects", "forced-gc")
	ho, hg := gcProbe(heapBuild, entries)
	fmt.Printf("%-10s %-14d %-14v\n", "heap", ho, hg.Round(time.Microsecond))
	ao, ag := gcProbe(arenaBuild, entries)
	fmt.Printf("%-10s %-14d %-14v\n", "arena", ao, ag.Round(time.Microsecond))
	if ao > 0 && ho > ao {
		fmt.Printf("# arena layout carries %.3f%% of the heap's object count\n", 100*float64(ao)/float64(ho))
	}
}

func main() {
	credits := flag.Int("credits", 16, "pre-posted receive buffers per VIA connection")
	bufSize := flag.Int("bufsize", 32*1024, "VIA eager buffer size in bytes")
	maxPeers := flag.Int("maxpeers", 256, "largest peer count to measure")
	gcMode := flag.Bool("gc", false, "measure GC cost of arena vs per-object match-entry storage")
	entries := flag.Int("entries", 1_000_000, "live records for the -gc comparison")
	flag.Parse()

	if *gcMode {
		runGC(*entries)
		return
	}

	fmt.Printf("# Unexpected-message memory vs peers (E5, §4.1)\n")
	fmt.Printf("# VIA model: %d credits × %d B per connection; Portals: application-sized pool\n",
		*credits, *bufSize)
	fmt.Printf("%-8s %-16s %-16s\n", "peers", "portals(bytes)", "via(bytes)")
	for n := 2; n-1 <= *maxPeers; n *= 2 {
		m := portals.NewMachine(portals.Loopback())
		p, err := experiments.MemScale(m, n, mpi.Config{}, *credits, *bufSize)
		if cerr := m.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-8d %-16d %-16d\n", p.Peers, p.PortalsBytes, p.VIABytes)
	}
}
