// Command mpinode runs one rank of a distributed MPI job, each rank in
// its own OS process, over the TCP reference transport — the whole stack
// (MPI → Portals → sockets) with nothing shared but the network.
//
//	mpinode -rank 0 -n 2 -addrs 127.0.0.1:9801,127.0.0.1:9802 &
//	mpinode -rank 1 -n 2 -addrs 127.0.0.1:9801,127.0.0.1:9802
//
// Every rank runs the same mini-application: a barrier, a ring exchange
// of payloads, and an allreduce whose result each rank verifies. Rank
// i's NID is i+1; -addrs lists the listen address of every rank in rank
// order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/mpi"
	"repro/portals"
)

func main() {
	rank := flag.Int("rank", 0, "this process's rank")
	n := flag.Int("n", 2, "total ranks")
	addrSpec := flag.String("addrs", "", "comma-separated listen addresses, one per rank")
	size := flag.Int("size", 64*1024, "ring payload bytes")
	rounds := flag.Int("rounds", 3, "application rounds")
	flag.Parse()

	addrs := strings.Split(*addrSpec, ",")
	if len(addrs) != *n {
		fmt.Fprintf(os.Stderr, "need %d addresses, got %d\n", *n, len(addrs))
		os.Exit(2)
	}
	if *rank < 0 || *rank >= *n {
		fmt.Fprintf(os.Stderr, "rank %d out of range\n", *rank)
		os.Exit(2)
	}

	selfNID := portals.NID(*rank + 1)
	peers := map[portals.NID]string{}
	ids := make([]portals.ProcessID, *n)
	for r := 0; r < *n; r++ {
		ids[r] = portals.ProcessID{NID: portals.NID(r + 1), PID: 1}
		if r != *rank {
			peers[portals.NID(r+1)] = addrs[r]
		}
	}

	m := portals.NewMachine(portals.TCPStatic(selfNID, addrs[*rank], peers))
	defer m.Close()
	ni, err := m.NIInit(selfNID, 1, portals.Limits{})
	if err != nil {
		fatal(err)
	}
	c, err := mpi.New(ni, *rank, ids, 1, mpi.Config{})
	if err != nil {
		fatal(err)
	}

	if err := app(c, *size, *rounds); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpinode:", err)
	os.Exit(1)
}

func app(c *mpi.Comm, size, rounds int) error {
	start := time.Now()
	if err := c.Barrier(); err != nil {
		return fmt.Errorf("startup barrier: %w", err)
	}
	next := (c.Rank() + 1) % c.Size()
	prev := (c.Rank() - 1 + c.Size()) % c.Size()
	out := make([]byte, size)
	in := make([]byte, size)
	for i := range out {
		out[i] = byte(c.Rank())
	}
	for round := 0; round < rounds; round++ {
		if _, err := c.Sendrecv(out, next, round, in, prev, round); err != nil {
			return fmt.Errorf("round %d ring: %w", round, err)
		}
		if in[0] != byte(prev) || in[size-1] != byte(prev) {
			return fmt.Errorf("round %d: ring payload corrupted", round)
		}
		v := []float64{float64(c.Rank() + 1)}
		if err := c.Allreduce(v, mpi.Sum); err != nil {
			return fmt.Errorf("round %d allreduce: %w", round, err)
		}
		if want := float64(c.Size()*(c.Size()+1)) / 2; v[0] != want {
			return fmt.Errorf("round %d: allreduce %v, want %v", round, v[0], want)
		}
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	fmt.Printf("rank %d/%d: %d rounds of %d-byte ring + allreduce OK in %v\n",
		c.Rank(), c.Size(), rounds, size, time.Since(start).Round(time.Millisecond))
	return nil
}
