// Command pingpong measures point-to-point latency and bandwidth over a
// chosen fabric — the §3 "<20 µsec zero-length ping-pong" experiment
// (E3) and the bandwidth/pipelining curve (E8).
//
// Usage:
//
//	pingpong [-fabric myrinet|gige|loopback|tcp] [-iters 200]         # latency
//	pingpong -bw [-fabric ...] [-count 64]                            # bandwidth sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/portals"
)

func fabricByName(name string) (portals.Fabric, bool) {
	switch name {
	case "myrinet":
		return portals.Myrinet(), true
	case "gige":
		return portals.GigE(), true
	case "loopback":
		return portals.Loopback(), true
	case "tcp":
		return portals.TCP(), true
	default:
		return portals.Fabric{}, false
	}
}

func main() {
	fabricName := flag.String("fabric", "myrinet", "fabric: myrinet, gige, loopback, tcp")
	iters := flag.Int("iters", 200, "round trips per latency measurement")
	bw := flag.Bool("bw", false, "run the bandwidth sweep instead of latency")
	count := flag.Int("count", 64, "messages per bandwidth point")
	flag.Parse()

	fab, ok := fabricByName(*fabricName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown fabric %q\n", *fabricName)
		os.Exit(2)
	}

	if *bw {
		fmt.Printf("# Bandwidth vs message size over %s (E8)\n", *fabricName)
		fmt.Printf("%-10s %-12s %-12s\n", "size", "MB/s", "elapsed")
		for _, size := range []int{1 << 10, 4 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 1 << 20} {
			pt, err := experiments.Bandwidth(fab, size, *count)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-10d %-12.1f %-12v\n", pt.Size, pt.MBps, pt.Elapsed.Round(time.Microsecond))
		}
		return
	}

	fmt.Printf("# Ping-pong latency over %s (E3; paper: <20µs on the Myrinet MCP)\n", *fabricName)
	fmt.Printf("%-10s %-14s\n", "size", "half-RTT")
	for _, size := range []int{0, 8, 64, 1024, 8192, 65536} {
		lat, err := experiments.PingPong(fab, experiments.PingPongConfig{Size: size, Iters: *iters})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-10d %-14v\n", size, lat.Round(100*time.Nanosecond))
	}
}
