// Command pingpong measures point-to-point latency and bandwidth over a
// chosen fabric — the §3 "<20 µsec zero-length ping-pong" experiment
// (E3) and the bandwidth/pipelining curve (E8).
//
// Usage:
//
//	pingpong [-fabric myrinet|gige|loopback|tcp] [-iters 200]         # latency
//	pingpong -bw [-fabric ...] [-count 64]                            # bandwidth sweep
//
// -trace captures the per-message flight recorder across the run as a
// Chrome Trace Event file (open in ui.perfetto.dev); -metrics writes the
// final Prometheus text exposition of every layer's counters.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs/metrics"
	"repro/internal/obs/trace"
	"repro/portals"
)

func fabricByName(name string) (portals.Fabric, bool) {
	switch name {
	case "myrinet":
		return portals.Myrinet(), true
	case "gige":
		return portals.GigE(), true
	case "loopback":
		return portals.Loopback(), true
	case "tcp":
		return portals.TCP(), true
	default:
		return portals.Fabric{}, false
	}
}

func main() {
	fabricName := flag.String("fabric", "myrinet", "fabric: myrinet, gige, loopback, tcp")
	iters := flag.Int("iters", 200, "round trips per latency measurement")
	bw := flag.Bool("bw", false, "run the bandwidth sweep instead of latency")
	count := flag.Int("count", 64, "messages per bandwidth point")
	traceOut := flag.String("trace", "", "write a Chrome Trace Event (Perfetto) capture to this file")
	metricsOut := flag.String("metrics", "", "write the final Prometheus text exposition to this file")
	flag.Parse()

	fab, ok := fabricByName(*fabricName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown fabric %q\n", *fabricName)
		os.Exit(2)
	}

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.Enable(trace.Config{})
	}
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
	}
	defer writeArtifacts(rec, reg, *traceOut, *metricsOut)

	if *bw {
		fmt.Printf("# Bandwidth vs message size over %s (E8)\n", *fabricName)
		fmt.Printf("%-10s %-12s %-12s\n", "size", "MB/s", "elapsed")
		for _, size := range []int{1 << 10, 4 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 1 << 20} {
			pt, err := experiments.Bandwidth(fab, size, *count)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-10d %-12.1f %-12v\n", pt.Size, pt.MBps, pt.Elapsed.Round(time.Microsecond))
		}
		return
	}

	fmt.Printf("# Ping-pong latency over %s (E3; paper: <20µs on the Myrinet MCP)\n", *fabricName)
	fmt.Printf("%-10s %-14s\n", "size", "half-RTT")
	for _, size := range []int{0, 8, 64, 1024, 8192, 65536} {
		lat, err := experiments.PingPong(fab, experiments.PingPongConfig{Size: size, Iters: *iters, Metrics: reg})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-10d %-14v\n", size, lat.Round(100*time.Nanosecond))
	}
}

// writeArtifacts drains the flight recorder and the metric registry to the
// requested files. It runs deferred on the success paths; error paths
// os.Exit without artifacts, which is the right failure mode (a partial
// capture would look like a complete one).
func writeArtifacts(rec *trace.Recorder, reg *metrics.Registry, tracePath, metricsPath string) {
	if rec != nil {
		trace.Disable()
		if err := writeFile(tracePath, func(w io.Writer) error {
			return trace.WriteChromeTrace(w, rec.Snapshot())
		}); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("# trace: %s (open in ui.perfetto.dev)\n", tracePath)
	}
	if reg != nil {
		if err := writeFile(metricsPath, reg.WriteText); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("# metrics: %s\n", metricsPath)
	}
}

// writeFile creates path, runs emit against it, and surfaces close errors.
func writeFile(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
