// Command ptlnode runs one Portals node in its own OS process over real
// kernel sockets — the genuinely distributed deployment of the §3
// reference implementation. Start a responder, then a pinger:
//
//	ptlnode -nid 1 -listen 127.0.0.1:9701 -peer 2=127.0.0.1:9702 -mode pong &
//	ptlnode -nid 2 -listen 127.0.0.1:9702 -peer 1=127.0.0.1:9701 \
//	        -mode ping -target 1 -count 200 -size 1024
//
// The pinger reports round-trip latency through real kernel sockets; the
// responder echoes entirely at the Portals level (armed match entry +
// event loop). -transport selects the wire: tcp (streams, the default) or
// udp (connectionless datagrams under the rtscts reliability engine).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/portals"
)

const (
	pingPtl  portals.PtlIndex  = 0
	pingBits portals.MatchBits = 0x9199
)

func main() {
	nid := flag.Uint("nid", 1, "this node's NID")
	pid := flag.Uint("pid", 1, "this process's PID")
	listen := flag.String("listen", "127.0.0.1:9701", "listen address")
	transport := flag.String("transport", "tcp", "wire transport: tcp or udp")
	peerSpecs := flag.String("peer", "", "comma-separated peers: nid=host:port[,nid=host:port...]")
	mode := flag.String("mode", "pong", "pong (echo forever) or ping")
	target := flag.Uint("target", 0, "ping target NID")
	count := flag.Int("count", 100, "ping round trips")
	size := flag.Int("size", 0, "ping payload bytes")
	flag.Parse()

	peers := map[portals.NID]string{}
	if *peerSpecs != "" {
		for _, spec := range strings.Split(*peerSpecs, ",") {
			k, v, ok := strings.Cut(spec, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "bad -peer entry %q\n", spec)
				os.Exit(2)
			}
			n, err := strconv.ParseUint(k, 10, 32)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad peer nid %q: %v\n", k, err)
				os.Exit(2)
			}
			peers[portals.NID(n)] = v
		}
	}

	var fabric portals.Fabric
	switch *transport {
	case "tcp":
		fabric = portals.TCPStatic(portals.NID(*nid), *listen, peers)
	case "udp":
		fabric = portals.UDPStatic(portals.NID(*nid), *listen, peers)
	default:
		fatal(fmt.Errorf("unknown -transport %q (want tcp or udp)", *transport))
	}
	m := portals.NewMachine(fabric)
	defer m.Close()
	ni, err := m.NIInit(portals.NID(*nid), portals.PID(*pid), portals.Limits{})
	if err != nil {
		fatal(err)
	}

	switch *mode {
	case "pong":
		if err := pong(ni); err != nil {
			fatal(err)
		}
	case "ping":
		if *target == 0 {
			fatal(errors.New("ping mode needs -target"))
		}
		if err := ping(ni, portals.ProcessID{NID: portals.NID(*target), PID: portals.PID(*pid)}, *count, *size); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptlnode:", err)
	os.Exit(1)
}

// arm sets up the echo buffer and event queue.
func arm(ni *portals.NI, size int) (portals.Handle, []byte, error) {
	eq, err := ni.EQAlloc(256)
	if err != nil {
		return portals.InvalidHandle, nil, err
	}
	me, err := ni.MEAttach(pingPtl, portals.AnyProcess, pingBits, 0, portals.Retain, portals.After)
	if err != nil {
		return portals.InvalidHandle, nil, err
	}
	buf := make([]byte, size)
	if _, err := ni.MDAttach(me, portals.MD{
		Start:     buf,
		Threshold: portals.ThresholdInfinite,
		Options:   portals.MDOpPut | portals.MDManageRemote | portals.MDTruncate,
		EQ:        eq,
	}, portals.Retain); err != nil {
		return portals.InvalidHandle, nil, err
	}
	return eq, buf, nil
}

func send(ni *portals.NI, to portals.ProcessID, buf []byte) error {
	md, err := ni.MDBind(portals.MD{Start: buf, Threshold: 1}, portals.Unlink)
	if err != nil {
		return err
	}
	return ni.Put(md, portals.NoAckReq, to, pingPtl, 0, pingBits, 0)
}

func pong(ni *portals.NI) error {
	eq, buf, err := arm(ni, 1<<20)
	if err != nil {
		return err
	}
	fmt.Printf("ptlnode %v: echoing on %v (ctrl-c to stop)\n", ni.ID(), pingBits)
	for {
		ev, err := ni.EQPoll(eq, time.Hour)
		if err != nil {
			if errors.Is(err, portals.ErrEQEmpty) {
				continue
			}
			return err
		}
		if ev.Type != portals.EventPut {
			continue
		}
		if err := send(ni, ev.Initiator, buf[:ev.MLength]); err != nil {
			return err
		}
	}
}

func ping(ni *portals.NI, target portals.ProcessID, count, size int) error {
	eq, _, err := arm(ni, 1<<20)
	if err != nil {
		return err
	}
	payload := make([]byte, size)
	// One warm-up round trip establishes the TCP connections.
	if err := roundTrip(ni, eq, target, payload); err != nil {
		return err
	}
	start := time.Now()
	for i := 0; i < count; i++ {
		if err := roundTrip(ni, eq, target, payload); err != nil {
			return fmt.Errorf("round %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d round trips of %d bytes to %v: avg RTT %v (half %v)\n",
		count, size, target, (elapsed / time.Duration(count)).Round(100*time.Nanosecond),
		(elapsed / time.Duration(2*count)).Round(100*time.Nanosecond))
	return nil
}

func roundTrip(ni *portals.NI, eq portals.Handle, target portals.ProcessID, payload []byte) error {
	if err := send(ni, target, payload); err != nil {
		return err
	}
	for {
		ev, err := ni.EQPoll(eq, 30*time.Second)
		if err != nil {
			return fmt.Errorf("echo timeout: %w", err)
		}
		if ev.Type == portals.EventPut {
			return nil
		}
	}
}
