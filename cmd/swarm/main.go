// Command swarm runs the million-endpoint open-loop load harness
// (internal/swarm) and reports ack round-trip latency quantiles plus
// per-message engine cost. It exists to demonstrate — and to regress —
// the lock-free read path: per-message cost should stay flat as the
// endpoint count grows from 1k to 100k (docs/PERF.md §7).
//
// Usage:
//
//	go run ./cmd/swarm -endpoints 100000 -mes 10 -msgs 200000
//	go run ./cmd/swarm -sweep 1000,10000,100000 -msgs 100000 -label swarm
//	go run ./cmd/swarm -rate 50000 -duration 5s
//
// -sweep runs the same workload once per endpoint count and prints the
// max/min per-message cost ratio (the flatness figure). -label writes the
// runs as BENCH_<label>.json in internal/benchfmt's summary format, so the
// harness output diffs like any other benchmark artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/swarm"
)

func main() {
	endpoints := flag.Int("endpoints", 1000, "number of target endpoint processes")
	mes := flag.Int("mes", 10, "wildcard match entries (and descriptors) per endpoint")
	nodes := flag.Int("nodes", 16, "fabric nodes the endpoints spread over")
	drivers := flag.Int("drivers", 1, "initiator processes issuing puts")
	rate := flag.Float64("rate", 0, "offered load in msgs/s across all drivers (0 = closed loop)")
	msgs := flag.Int("msgs", 0, "total messages to send (0 = run for -duration)")
	duration := flag.Duration("duration", time.Second, "send window when -msgs is 0")
	payload := flag.Int("payload", 64, "put payload bytes")
	lanes := flag.Int("lanes", 1, "delivery lanes per node")
	inflight := flag.Int("inflight", 4096, "per-driver unacked message cap")
	hot := flag.Int("hot", 0, "restrict traffic to the first N endpoints (0 = all; the flatness control)")
	warmup := flag.Int("warmup", 0, "untimed warmup messages before the measured window (0 = auto, -1 = none)")
	trials := flag.Int("trials", 1, "runs per configuration; the best (lowest ns/msg) is reported")
	seed := flag.Int64("seed", 1, "target-selection seed")
	transport := flag.String("transport", "loopback", "fabric under the harness: loopback or udp")
	sweep := flag.String("sweep", "", "comma-separated endpoint counts to sweep (overrides -endpoints)")
	label := flag.String("label", "", "write runs as BENCH_<label>.json")
	out := flag.String("o", "", "also write the benchmark summary to this path")
	flag.Parse()

	counts := []int{*endpoints}
	if *sweep != "" {
		counts = counts[:0]
		for _, f := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "swarm: bad -sweep entry %q\n", f)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
	}

	sum := benchfmt.New()
	sum.Label = *label
	var minNs, maxNs float64
	for _, ep := range counts {
		cfg := swarm.Config{
			Endpoints:      ep,
			MEsPerEndpoint: *mes,
			Nodes:          *nodes,
			Drivers:        *drivers,
			Rate:           *rate,
			Messages:       *msgs,
			Duration:       *duration,
			PayloadBytes:   *payload,
			Lanes:          *lanes,
			MaxInflight:    *inflight,
			HotTargets:     *hot,
			Warmup:         *warmup,
			Seed:           *seed,
			Transport:      *transport,
		}
		if *trials < 1 {
			*trials = 1
		}
		var rep *swarm.Report
		for t := 0; t < *trials; t++ {
			r, err := swarm.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "swarm:", err)
				os.Exit(1)
			}
			if rep == nil || r.NsPerMsg < rep.NsPerMsg {
				rep = r
			}
		}
		printReport(rep)
		sum.Results = append(sum.Results, toResult(rep))
		if minNs == 0 || rep.NsPerMsg < minNs {
			minNs = rep.NsPerMsg
		}
		if rep.NsPerMsg > maxNs {
			maxNs = rep.NsPerMsg
		}
	}
	if len(counts) > 1 && minNs > 0 {
		fmt.Printf("flatness: max/min ns/msg = %.3f across %v endpoints\n", maxNs/minNs, counts)
	}
	if *label != "" {
		if err := sum.WriteFile(benchfmt.LabelPath("", *label)); err != nil {
			fmt.Fprintln(os.Stderr, "swarm:", err)
			os.Exit(1)
		}
	}
	if *out != "" {
		if err := sum.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "swarm:", err)
			os.Exit(1)
		}
	}
}

func printReport(r *swarm.Report) {
	fmt.Printf("endpoints=%d mes=%d nodes=%d drivers=%d\n",
		r.Endpoints, r.MatchEntries, r.Nodes, r.Drivers)
	fmt.Printf("  sent=%d acked=%d elapsed=%v\n", r.Sent, r.Acked, r.Elapsed.Round(time.Millisecond))
	mode := "closed-loop"
	if r.OfferedRate > 0 {
		mode = fmt.Sprintf("offered %.0f msgs/s", r.OfferedRate)
	}
	fmt.Printf("  %s: achieved %.0f msgs/s, %.0f ns/msg\n", mode, r.AchievedRate, r.NsPerMsg)
	fmt.Printf("  latency p50=%v p99=%v p999=%v\n", r.P50, r.P99, r.P999)
}

// toResult renders one run as a benchfmt Result, named the way a testing
// benchmark would be, so BENCH_ diff tooling treats harness runs and `go
// test -bench` runs uniformly.
func toResult(r *swarm.Report) benchfmt.Result {
	return benchfmt.Result{
		Name:       fmt.Sprintf("SwarmSteady/endpoints=%d", r.Endpoints),
		Package:    "repro/cmd/swarm",
		Cpus:       1,
		Iterations: r.Acked,
		NsPerOp:    r.NsPerMsg,
		Metrics: map[string]float64{
			"p50-ns":        float64(r.P50),
			"p99-ns":        float64(r.P99),
			"p999-ns":       float64(r.P999),
			"msgs/s":        r.AchievedRate,
			"match-entries": float64(r.MatchEntries),
			"acked-of-sent": float64(r.Acked) / float64(max64(r.Sent, 1)),
		},
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
