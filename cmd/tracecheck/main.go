// Command tracecheck validates the artifacts the observability subsystem
// emits (docs/OBSERVABILITY.md): Chrome Trace Event JSON from the flight
// recorder (internal/obs/trace) and Prometheus text exposition from the
// metrics registry (internal/obs/metrics). It is the assertion half of
// `make trace-smoke`: a refactor that silently breaks either exporter
// fails CI here rather than in someone's Perfetto tab.
//
// Usage:
//
//	tracecheck [-trace trace.json] [-metrics metrics.prom] [-require-bypass]
//	           [-require-offload]
//
// -require-bypass additionally asserts the §5.1 application-bypass claim
// is visible in the capture: at least one receive-side instant
// (match-done, deliver, or event-post) must land INSIDE a "compute burn"
// span on the same node — message handling progressing while the
// application makes no library calls.
//
// -require-offload asserts the triggered-operations claim the same way:
// at least one trig-fire instant (a triggered put/get/ct-inc executing on
// a delivery lane, core/ct.go) must land inside a compute-burn span on
// the same node — the collective chain progressing with zero host
// wakeups while the application burns CPU. Captures come from
// cmd/collbench -trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// chromeEvent mirrors the subset of the Trace Event Format the flight
// recorder emits: complete spans ("X"), instants ("i"), metadata ("M").
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  uint64  `json:"pid"`
	TID  uint64  `json:"tid"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// receiveSide are the instants that can only be produced by the delivery
// engine handling an incoming message.
var receiveSide = map[string]bool{"match-done": true, "deliver": true, "event-post": true}

func checkTrace(path string, requireBypass, requireOffload bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var t chromeTrace
	if err := json.Unmarshal(data, &t); err != nil {
		return fmt.Errorf("%s: not valid Chrome Trace JSON: %w", path, err)
	}
	if t.DisplayTimeUnit == "" {
		return fmt.Errorf("%s: missing displayTimeUnit", path)
	}
	if len(t.TraceEvents) == 0 {
		return fmt.Errorf("%s: empty traceEvents (was the recorder enabled?)", path)
	}
	validPh := map[string]bool{"X": true, "i": true, "M": true}
	for i, ev := range t.TraceEvents {
		switch {
		case ev.Name == "":
			return fmt.Errorf("%s: event %d has an empty name", path, i)
		case !validPh[ev.Ph]:
			return fmt.Errorf("%s: event %d (%s) has unexpected phase %q", path, i, ev.Name, ev.Ph)
		case ev.Ph != "M" && ev.TS < 0:
			return fmt.Errorf("%s: event %d (%s) has negative ts", path, i, ev.Name)
		case ev.Ph == "X" && ev.Dur <= 0:
			return fmt.Errorf("%s: span %d (%s) has non-positive dur", path, i, ev.Name)
		}
	}
	fmt.Printf("tracecheck: %s: %d events well-formed\n", path, len(t.TraceEvents))
	if requireBypass {
		inside, burns, err := insideBurns(t.TraceEvents, func(name string) bool { return receiveSide[name] })
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if inside == 0 {
			return fmt.Errorf("%s: no receive-side match-done/deliver/event-post instants inside any of %d compute-burn spans — the application-bypass claim is not visible in this capture", path, burns)
		}
		fmt.Printf("tracecheck: %s: %d receive-side instants inside %d compute-burn spans (application bypass visible)\n",
			path, inside, burns)
	}
	if requireOffload {
		inside, burns, err := insideBurns(t.TraceEvents, func(name string) bool { return name == "trig-fire" })
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if inside == 0 {
			return fmt.Errorf("%s: no trig-fire instants inside any of %d compute-burn spans — the offloaded-collective claim is not visible in this capture", path, burns)
		}
		fmt.Printf("tracecheck: %s: %d trig-fire instants inside %d compute-burn spans (NIC-offloaded progression visible)\n",
			path, inside, burns)
	}
	return nil
}

// insideBurns counts instants matching want that land inside "compute
// burn" spans on the same node. Zero burn spans is itself an error — the
// capture was not produced by a burn-bracketing driver.
func insideBurns(evs []chromeEvent, want func(name string) bool) (inside, burns int, err error) {
	for _, b := range evs {
		if b.Ph != "X" || b.Name != "compute burn" {
			continue
		}
		burns++
		for _, e := range evs {
			if e.Ph == "i" && want(e.Name) && e.PID == b.PID &&
				e.TS >= b.TS && e.TS <= b.TS+b.Dur {
				inside++
			}
		}
	}
	if burns == 0 {
		return 0, 0, fmt.Errorf("no compute-burn spans (run the capture through cmd/bypass or cmd/collbench with -trace)")
	}
	return inside, burns, nil
}

var (
	helpLine = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	typeLine = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	// sampleLine: name, optional {labels}, value. Label values may contain
	// escaped quotes, so the body match is deliberately permissive; pair
	// balance is checked structurally below.
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$`)
)

// histSuffixes lets _bucket/_sum/_count samples resolve to their declared
// histogram family.
var histSuffixes = []string{"_bucket", "_sum", "_count"}

func checkMetrics(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	typed := map[string]string{} // family -> TYPE
	samples := 0
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := typeLine.FindStringSubmatch(line); m != nil {
				typed[m[1]] = m[2]
				continue
			}
			if helpLine.MatchString(line) || strings.HasPrefix(line, "# ") {
				continue
			}
			return fmt.Errorf("%s:%d: malformed comment line %q", path, i+1, line)
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("%s:%d: not a valid sample line: %q", path, i+1, line)
		}
		name, labels, value := m[1], m[2], m[3]
		family := name
		if _, ok := typed[family]; !ok {
			for _, suf := range histSuffixes {
				if base := strings.TrimSuffix(name, suf); base != name {
					if ty, ok := typed[base]; ok && ty == "histogram" {
						family = base
					}
				}
			}
		}
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("%s:%d: sample %q has no preceding # TYPE", path, i+1, name)
		}
		if labels != "" && (!strings.HasPrefix(labels, "{") || !strings.HasSuffix(labels, "}")) {
			return fmt.Errorf("%s:%d: malformed label set %q", path, i+1, labels)
		}
		if _, err := strconv.ParseFloat(strings.TrimPrefix(value, "+"), 64); err != nil {
			return fmt.Errorf("%s:%d: value %q is not a float: %v", path, i+1, value, err)
		}
		samples++
	}
	if samples == 0 {
		return fmt.Errorf("%s: no samples (was the registry populated?)", path)
	}
	fmt.Printf("tracecheck: %s: %d samples across %d families well-formed\n", path, samples, len(typed))
	return nil
}

func main() {
	tracePath := flag.String("trace", "", "Chrome Trace Event JSON file to validate")
	metricsPath := flag.String("metrics", "", "Prometheus text exposition file to validate")
	requireBypass := flag.Bool("require-bypass", false,
		"require receive-side instants inside compute-burn spans (the §5.1 claim)")
	requireOffload := flag.Bool("require-offload", false,
		"require trig-fire instants inside compute-burn spans (the triggered-operations claim)")
	flag.Parse()
	if *tracePath == "" && *metricsPath == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: nothing to do; pass -trace and/or -metrics")
		os.Exit(2)
	}
	if *tracePath != "" {
		if err := checkTrace(*tracePath, *requireBypass, *requireOffload); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
	}
	if *metricsPath != "" {
		if err := checkMetrics(*metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
	}
}
