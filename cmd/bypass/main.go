// Command bypass regenerates Figure 6 of the paper: the duration of
// waiting for messages as a function of the work interval, for
// MPICH/Portals (application bypass) versus MPICH/GM (library-driven
// progress), 10 × 50 KB messages per batch.
//
// Usage:
//
//	bypass [-batch 10] [-size 51200] [-iters 5] [-testcalls 0] [-max 80ms] [-points 9]
//	       [-trace trace.json] [-metrics metrics.prom]
//
// With -testcalls 3 it regenerates the §5.3 "related testing" variant in
// which sprinkled MPI test calls let MPICH/GM catch up.
//
// -trace captures the per-message flight recorder (internal/obs/trace)
// across the whole sweep and writes a Chrome Trace Event file; open it in
// Perfetto (ui.perfetto.dev) to see receive-side match/deliver/event-post
// instants landing inside the application's compute-burn spans — the §5.1
// bypass claim, directly observable. -metrics writes the final Prometheus
// text exposition of every layer's counters.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs/metrics"
	"repro/internal/obs/trace"
)

func main() {
	batch := flag.Int("batch", 10, "messages per batch")
	size := flag.Int("size", 50*1024, "message size in bytes")
	iters := flag.Int("iters", 5, "repetitions to average over")
	testCalls := flag.Int("testcalls", 0, "MPI test calls sprinkled through the work interval")
	maxWork := flag.Duration("max", 12*time.Millisecond, "largest work interval")
	points := flag.Int("points", 9, "number of work-interval points")
	traceOut := flag.String("trace", "", "write a Chrome Trace Event (Perfetto) capture to this file")
	metricsOut := flag.String("metrics", "", "write the final Prometheus text exposition to this file")
	flag.Parse()

	cfg := experiments.DefaultBypassConfig()
	cfg.Batch = *batch
	cfg.MsgSize = *size
	cfg.Iters = *iters
	cfg.TestCalls = *testCalls

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.Enable(trace.Config{})
	}
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
	}

	works := make([]time.Duration, *points)
	for i := range works {
		works[i] = *maxWork * time.Duration(i) / time.Duration(*points-1)
	}

	fmt.Printf("# Figure 6 reproduction: wait time vs work interval\n")
	fmt.Printf("# batch=%d size=%dB iters=%d testcalls=%d fabric=myrinet-sim\n",
		cfg.Batch, cfg.MsgSize, cfg.Iters, cfg.TestCalls)
	fmt.Printf("%-14s %-18s %-18s\n", "work", "wait(MPI/GM)", "wait(MPI/Portals)")
	for _, w := range works {
		gm, err := experiments.RunBypass(experiments.StackGM, w, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gm:", err)
			os.Exit(1)
		}
		pt, err := experiments.RunBypass(experiments.StackPortals, w, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "portals:", err)
			os.Exit(1)
		}
		fmt.Printf("%-14v %-18v %-18v\n", w, gm.WaitTime.Round(time.Microsecond), pt.WaitTime.Round(time.Microsecond))
	}

	if rec != nil {
		trace.Disable()
		if err := writeFile(*traceOut, func(w io.Writer) error {
			return trace.WriteChromeTrace(w, rec.Snapshot())
		}); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("# trace: %s (open in ui.perfetto.dev)\n", *traceOut)
	}
	if reg != nil {
		if err := writeFile(*metricsOut, reg.WriteText); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("# metrics: %s\n", *metricsOut)
	}
}

// writeFile creates path, runs emit against it, and surfaces close errors
// (the artifact is the whole point of the flag, so a short write must not
// pass silently).
func writeFile(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
