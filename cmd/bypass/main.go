// Command bypass regenerates Figure 6 of the paper: the duration of
// waiting for messages as a function of the work interval, for
// MPICH/Portals (application bypass) versus MPICH/GM (library-driven
// progress), 10 × 50 KB messages per batch.
//
// Usage:
//
//	bypass [-batch 10] [-size 51200] [-iters 5] [-testcalls 0] [-max 80ms] [-points 9]
//
// With -testcalls 3 it regenerates the §5.3 "related testing" variant in
// which sprinkled MPI test calls let MPICH/GM catch up.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	batch := flag.Int("batch", 10, "messages per batch")
	size := flag.Int("size", 50*1024, "message size in bytes")
	iters := flag.Int("iters", 5, "repetitions to average over")
	testCalls := flag.Int("testcalls", 0, "MPI test calls sprinkled through the work interval")
	maxWork := flag.Duration("max", 12*time.Millisecond, "largest work interval")
	points := flag.Int("points", 9, "number of work-interval points")
	flag.Parse()

	cfg := experiments.DefaultBypassConfig()
	cfg.Batch = *batch
	cfg.MsgSize = *size
	cfg.Iters = *iters
	cfg.TestCalls = *testCalls

	works := make([]time.Duration, *points)
	for i := range works {
		works[i] = *maxWork * time.Duration(i) / time.Duration(*points-1)
	}

	fmt.Printf("# Figure 6 reproduction: wait time vs work interval\n")
	fmt.Printf("# batch=%d size=%dB iters=%d testcalls=%d fabric=myrinet-sim\n",
		cfg.Batch, cfg.MsgSize, cfg.Iters, cfg.TestCalls)
	fmt.Printf("%-14s %-18s %-18s\n", "work", "wait(MPI/GM)", "wait(MPI/Portals)")
	for _, w := range works {
		gm, err := experiments.RunBypass(experiments.StackGM, w, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gm:", err)
			os.Exit(1)
		}
		pt, err := experiments.RunBypass(experiments.StackPortals, w, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "portals:", err)
			os.Exit(1)
		}
		fmt.Printf("%-14v %-18v %-18v\n", w, gm.WaitTime.Round(time.Microsecond), pt.WaitTime.Round(time.Microsecond))
	}
}
