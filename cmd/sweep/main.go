// Command sweep runs every experiment in the reproduction and prints the
// paper-style tables and series one after another — the one-shot
// regeneration entry point referenced by EXPERIMENTS.md.
//
// Usage:
//
//	sweep [-quick]
//
// -quick shrinks iteration counts so the whole run finishes in well under
// a minute; the full run takes a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/portals"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	quick := flag.Bool("quick", false, "smaller iteration counts")
	flag.Parse()

	iters := 5
	ppIters := 200
	points := 9
	maxWork := 12 * time.Millisecond
	if *quick {
		iters, ppIters, points, maxWork = 2, 50, 5, 8*time.Millisecond
	}

	// ----- E1/E2: Figure 6 -------------------------------------------------
	fmt.Println("===== E1 (Figure 6): wait time vs work interval, 10 x 50KB =====")
	cfg := experiments.DefaultBypassConfig()
	cfg.Iters = iters
	fmt.Printf("%-14s %-18s %-18s\n", "work", "wait(MPI/GM)", "wait(MPI/Portals)")
	var works []time.Duration
	for i := 0; i < points; i++ {
		works = append(works, maxWork*time.Duration(i)/time.Duration(points-1))
	}
	for _, w := range works {
		gm, err := experiments.RunBypass(experiments.StackGM, w, cfg)
		if err != nil {
			fatal(err)
		}
		pt, err := experiments.RunBypass(experiments.StackPortals, w, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14v %-18v %-18v\n", w, gm.WaitTime.Round(time.Microsecond), pt.WaitTime.Round(time.Microsecond))
	}

	fmt.Println("\n===== E2 (§5.3 variant): 3 test calls during work =====")
	cfg.TestCalls = 3
	fmt.Printf("%-14s %-18s %-18s\n", "work", "wait(MPI/GM)", "wait(MPI/Portals)")
	for _, w := range []time.Duration{0, maxWork / 2, maxWork} {
		gm, err := experiments.RunBypass(experiments.StackGM, w, cfg)
		if err != nil {
			fatal(err)
		}
		pt, err := experiments.RunBypass(experiments.StackPortals, w, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14v %-18v %-18v\n", w, gm.WaitTime.Round(time.Microsecond), pt.WaitTime.Round(time.Microsecond))
	}
	cfg.TestCalls = 0

	// ----- E3: ping-pong latency -------------------------------------------
	fmt.Println("\n===== E3 (§3): ping-pong latency (paper: <20µs on Myrinet MCP) =====")
	fmt.Printf("%-10s %-14s %-14s\n", "size", "myrinet-sim", "loopback")
	for _, size := range []int{0, 1024, 65536} {
		sim, err := experiments.PingPong(portals.Myrinet(), experiments.PingPongConfig{Size: size, Iters: ppIters})
		if err != nil {
			fatal(err)
		}
		lb, err := experiments.PingPong(portals.Loopback(), experiments.PingPongConfig{Size: size, Iters: ppIters})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-10d %-14v %-14v\n", size, sim.Round(100*time.Nanosecond), lb.Round(100*time.Nanosecond))
	}

	// ----- E8: bandwidth -----------------------------------------------------
	fmt.Println("\n===== E8 (§3): bandwidth vs message size over simulated Myrinet =====")
	fmt.Printf("%-10s %-12s\n", "size", "MB/s")
	for _, size := range []int{4 << 10, 32 << 10, 128 << 10, 512 << 10} {
		pt, err := experiments.Bandwidth(portals.Myrinet(), size, 32)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-10d %-12.1f\n", pt.Size, pt.MBps)
	}

	// ----- E5: memory scaling ------------------------------------------------
	fmt.Println("\n===== E5 (§4.1): unexpected-message memory vs peers =====")
	fmt.Printf("%-8s %-16s %-16s\n", "peers", "portals(bytes)", "via(bytes)")
	for n := 2; n <= 128; n *= 4 {
		m := portals.NewMachine(portals.Loopback())
		p, err := experiments.MemScale(m, n, mpi.Config{}, 16, 32*1024)
		if cerr := m.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8d %-16d %-16d\n", p.Peers, p.PortalsBytes, p.VIABytes)
	}

	// ----- E7: collectives ablation -------------------------------------------
	fmt.Println("\n===== E7 (§2): collectives directly on Portals vs over MPI p2p =====")
	fmt.Printf("%-12s %-8s %-14s %-14s %-8s\n", "op", "procs", "direct", "over-mpi", "speedup")
	for _, n := range []int{4, 8, 16} {
		points, err := experiments.CollAblation(portals.Loopback(), n, 20, 64)
		if err != nil {
			fatal(err)
		}
		for _, p := range points {
			fmt.Printf("%-12s %-8d %-14v %-14v %-8.2f\n",
				p.Op, p.Procs, p.DirectPerOp.Round(time.Microsecond), p.OverMPIPerOp.Round(time.Microsecond), p.Speedup)
		}
	}
	// ----- E12: receive overhead ----------------------------------------------
	fmt.Println("\n===== E12 (§5.1/§5.3): receive overhead, interrupt-driven vs NIC-offload =====")
	fmt.Printf("%-12s %-12s %-12s %-12s %-10s %-8s\n", "model", "idle", "loaded", "slowdown", "msgs", "intr")
	ocfg := experiments.DefaultOverheadConfig()
	if *quick {
		ocfg.ComputeIters = 8000
	}
	for _, row := range []struct {
		model portals.NICModel
		cost  time.Duration
		name  string
	}{
		{portals.NICOffload, 0, "nic-offload"},
		{portals.HostInterrupt, 20 * time.Microsecond, "interrupt"},
	} {
		r, err := experiments.ReceiveOverhead(row.model, row.cost, ocfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %-12v %-12v %-11.1f%% %-10d %-8d\n",
			row.name, r.IdleCompute.Round(time.Microsecond), r.LoadedCompute.Round(time.Microsecond),
			r.SlowdownPct, r.Messages, r.Interrupts)
	}

	// ----- E14: scalability -----------------------------------------------------
	fmt.Println("\n===== E14 (§4.1): barrier cost vs job size (per-process messages = log2 n) =====")
	fmt.Printf("%-8s %-14s %-12s %-16s\n", "procs", "wall/op", "msgs/proc", "msgs/proc/log2n")
	scale, err := experiments.BarrierScaling(portals.Loopback(), []int{4, 8, 16, 32, 64, 128}, 10)
	if err != nil {
		fatal(err)
	}
	for _, p := range scale {
		fmt.Printf("%-8d %-14v %-12.2f %-16.2f\n",
			p.Procs, p.PerBarrier.Round(time.Microsecond), p.MsgsPerProc, p.MsgsPerOpLog)
	}

	fmt.Println("\ndone.")
}
