// Command benchjson converts a `go test -json -bench` event stream on
// stdin into a machine-readable benchmark summary (internal/benchfmt), so
// `make bench` leaves a BENCH_baseline.json that tooling (and later PRs)
// can diff instead of scraping console text.
//
// Usage:
//
//	go test -bench=. -benchmem -run=NONE -json . | go run ./cmd/benchjson -o BENCH_baseline.json
//	go test -bench=Swarm -run=NONE -json . | go run ./cmd/benchjson -label swarm -min-results 2
//
// With no -o and no -label the summary is written to stdout. -label X
// additionally writes BENCH_X.json next to the baseline artifact (and
// stamps the summary's label field); -min-results N exits nonzero when
// fewer than N benchmark lines parsed, so an empty or truncated bench
// stream fails the pipeline instead of producing a quietly empty artifact.
//
// -diff turns the tool into a regression gate: the incoming stream is
// compared against a previously written summary, and any benchmark whose
// ns/op grew past -threshold (default 1.25 = 25% slower) exits nonzero:
//
//	go test -bench=Translate -run=NONE -json . \
//	  | go run ./cmd/benchjson -diff BENCH_baseline.json -threshold 1.25
//
// Matching is by (name, package, cpus); zero comparable results is itself
// an error, so a renamed suite cannot pass as "no regressions".
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchfmt"
)

func run(out, label, diff string, threshold float64, minResults int) error {
	s, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		return err
	}
	if err := s.CheckMin(minResults); err != nil {
		return err
	}
	s.Label = label
	if label != "" {
		if err := s.WriteFile(benchfmt.LabelPath("", label)); err != nil {
			return err
		}
	}
	switch {
	case out != "":
		if err := s.WriteFile(out); err != nil {
			return err
		}
	case label == "" && diff == "":
		// No artifact or gate requested: dump the summary to stdout.
		if err := s.WriteFile(""); err != nil {
			return err
		}
	}
	if diff == "" {
		return nil
	}
	base, err := benchfmt.ReadFile(diff)
	if err != nil {
		return err
	}
	regs, compared, err := benchfmt.Compare(base, s, threshold)
	if err != nil {
		return err
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "benchjson: regression:", r)
		}
		return fmt.Errorf("%d of %d benchmarks regressed past %.2fx vs %s", len(regs), compared, threshold, diff)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within %.2fx of %s\n", compared, threshold, diff)
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	label := flag.String("label", "", "also write the summary as BENCH_<label>.json")
	minResults := flag.Int("min-results", 0, "fail unless at least this many benchmark results parsed")
	diff := flag.String("diff", "", "compare against this BENCH_*.json and fail on regressions")
	threshold := flag.Float64("threshold", 1.25, "ns/op growth ratio that counts as a regression (with -diff)")
	flag.Parse()
	if err := run(*out, *label, *diff, *threshold, *minResults); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
