// Command benchjson converts a `go test -json -bench` event stream on
// stdin into a machine-readable benchmark summary (internal/benchfmt), so
// `make bench` leaves a BENCH_baseline.json that tooling (and later PRs)
// can diff instead of scraping console text.
//
// Usage:
//
//	go test -bench=. -benchmem -run=NONE -json . | go run ./cmd/benchjson -o BENCH_baseline.json
//	go test -bench=Swarm -run=NONE -json . | go run ./cmd/benchjson -label swarm -min-results 2
//
// With no -o and no -label the summary is written to stdout. -label X
// additionally writes BENCH_X.json next to the baseline artifact (and
// stamps the summary's label field); -min-results N exits nonzero when
// fewer than N benchmark lines parsed, so an empty or truncated bench
// stream fails the pipeline instead of producing a quietly empty artifact.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchfmt"
)

func run(out, label string, minResults int) error {
	s, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		return err
	}
	if err := s.CheckMin(minResults); err != nil {
		return err
	}
	s.Label = label
	if label != "" {
		if err := s.WriteFile(benchfmt.LabelPath("", label)); err != nil {
			return err
		}
		if out == "" {
			return nil // labeled artifact written; no stdout dump wanted
		}
	}
	return s.WriteFile(out)
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	label := flag.String("label", "", "also write the summary as BENCH_<label>.json")
	minResults := flag.Int("min-results", 0, "fail unless at least this many benchmark results parsed")
	flag.Parse()
	if err := run(*out, *label, *minResults); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
