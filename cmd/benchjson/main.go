// Command benchjson converts a `go test -json -bench` event stream on
// stdin into a machine-readable benchmark summary, so `make bench` leaves
// a BENCH_baseline.json that tooling (and later PRs) can diff instead of
// scraping console text.
//
// Usage:
//
//	go test -bench=. -benchmem -run=NONE -json . | go run ./cmd/benchjson -o BENCH_baseline.json
//
// With no -o the summary is written to stdout. Lines that are not test2json
// events or not benchmark results are ignored, so the tool is safe to put
// at the end of any test pipeline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// event is the subset of test2json's output record we need.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// Result is one benchmark line, parsed.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Cpus       int                `json:"cpus,omitempty"` // GOMAXPROCS suffix ("-8"); 1 when absent
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"` // B/op, allocs/op, MB/s, custom
}

// Summary is the whole file.
type Summary struct {
	Generated string            `json:"generated"` // RFC 3339
	Env       map[string]string `json:"env,omitempty"`
	Results   []Result          `json:"results"`
}

// benchLine matches "BenchmarkFoo/sub-8   123  456 ns/op  0 B/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// envLine matches the "goos: linux" style preamble go test prints.
var envLine = regexp.MustCompile(`^(goos|goarch|pkg|cpu):\s+(.*)$`)

// cpuSuffix matches the "-8" GOMAXPROCS suffix the testing package appends
// to benchmark names whenever the run's GOMAXPROCS is not 1 (so `-cpu=1,4`
// runs show up as "BenchmarkFoo" and "BenchmarkFoo-4").
var cpuSuffix = regexp.MustCompile(`-(\d+)$`)

func parse(r io.Reader) (*Summary, error) {
	s := &Summary{
		Generated: time.Now().UTC().Format(time.RFC3339),
		// gomaxprocs is the host default (benchjson runs on the same machine
		// as the benchmarks); per-result Cpus records each -cpu variant.
		Env:     map[string]string{"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0))},
		Results: []Result{},
	}
	pkgVals := map[string]bool{}
	handleLine := func(pkg, line string) {
		line = strings.TrimSpace(line)
		if m := envLine.FindStringSubmatch(line); m != nil {
			if m[1] == "pkg" {
				pkgVals[m[2]] = true
			}
			s.Env[m[1]] = m[2]
			return
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			return
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return
		}
		res := Result{Name: m[1], Package: pkg, Cpus: 1, Iterations: iters}
		if sm := cpuSuffix.FindStringSubmatch(res.Name); sm != nil {
			if n, err := strconv.Atoi(sm[1]); err == nil && n > 1 {
				res.Cpus = n
			}
		}
		// The tail is pairs: "<value> <unit>".
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				res.NsPerOp = v
				continue
			}
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[fields[i+1]] = v
		}
		s.Results = append(s.Results, res)
	}
	// A benchmark's console line arrives as TWO output events — the name is
	// flushed before the run, the timing after — so fragments must be
	// reassembled into lines (per package) before matching.
	partial := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // not a test2json event; skip
		}
		if ev.Action != "output" {
			continue
		}
		buf := partial[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			handleLine(ev.Package, buf[:nl])
			buf = buf[nl+1:]
		}
		partial[ev.Package] = buf
	}
	for pkg, rest := range partial {
		if rest != "" {
			handleLine(pkg, rest)
		}
	}
	// In a multi-package run ("go test -bench ... ./pkg1 ./pkg2") the "pkg:"
	// preamble appears once per package; a single env key would silently
	// keep whichever came last. Drop it — each Result carries its Package.
	if len(pkgVals) > 1 {
		delete(s.Env, "pkg")
	}
	return s, sc.Err()
}

func run(in io.Reader, outPath string) error {
	s, err := parse(in)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if err := run(os.Stdin, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
