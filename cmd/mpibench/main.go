// Command mpibench runs OSU-style MPI micro-benchmarks (latency,
// bandwidth, message rate) over any fabric — the numbers an MPI user
// would quote for this stack.
//
//	mpibench [-fabric myrinet|gige|loopback|tcp] [-bench latency|bw|rate]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/mpi"
	"repro/portals"
)

func main() {
	fabricName := flag.String("fabric", "myrinet", "fabric: myrinet, gige, loopback, tcp")
	bench := flag.String("bench", "latency", "benchmark: latency, bw, rate")
	iters := flag.Int("iters", 200, "iterations per size")
	window := flag.Int("window", 32, "in-flight messages for bw/rate")
	flag.Parse()

	var fab portals.Fabric
	switch *fabricName {
	case "myrinet":
		fab = portals.Myrinet()
	case "gige":
		fab = portals.GigE()
	case "loopback":
		fab = portals.Loopback()
	case "tcp":
		fab = portals.TCP()
	default:
		fmt.Fprintf(os.Stderr, "unknown fabric %q\n", *fabricName)
		os.Exit(2)
	}

	m := portals.NewMachine(fab)
	defer m.Close()
	w, err := mpi.NewWorld(m, 2, mpi.Config{})
	if err != nil {
		fatal(err)
	}

	switch *bench {
	case "latency":
		fmt.Printf("# MPI ping-pong latency over %s (half RTT)\n%-10s %-14s\n", *fabricName, "size", "latency")
		for _, size := range []int{0, 8, 64, 1024, 8192, 65536} {
			lat, err := latency(w, size, *iters)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-10d %-14v\n", size, lat.Round(100*time.Nanosecond))
		}
	case "bw":
		fmt.Printf("# MPI streaming bandwidth over %s (window %d)\n%-10s %-12s\n", *fabricName, *window, "size", "MB/s")
		for _, size := range []int{1024, 8192, 65536, 262144} {
			mbps, err := bandwidth(w, size, *iters, *window)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-10d %-12.1f\n", size, mbps)
		}
	case "rate":
		rate, err := messageRate(w, *iters*10, *window)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# MPI message rate over %s: %.0f msgs/s (0-byte, window %d)\n", *fabricName, rate, *window)
	default:
		fmt.Fprintf(os.Stderr, "unknown bench %q\n", *bench)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpibench:", err)
	os.Exit(1)
}

func latency(w *mpi.World, size, iters int) (time.Duration, error) {
	res := make(chan time.Duration, 1)
	err := w.Run(func(c *mpi.Comm) error {
		buf := make([]byte, size)
		peer := 1 - c.Rank()
		// Warm-up.
		if err := pingpong(c, buf, peer, 2); err != nil {
			return err
		}
		start := time.Now()
		if err := pingpong(c, buf, peer, iters); err != nil {
			return err
		}
		if c.Rank() == 0 {
			res <- time.Since(start) / time.Duration(2*iters)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return <-res, nil
}

func pingpong(c *mpi.Comm, buf []byte, peer, iters int) error {
	for i := 0; i < iters; i++ {
		if c.Rank() == 0 {
			if err := c.Send(buf, peer, 1); err != nil {
				return err
			}
			if _, err := c.Recv(buf, peer, 2); err != nil {
				return err
			}
		} else {
			if _, err := c.Recv(buf, peer, 1); err != nil {
				return err
			}
			if err := c.Send(buf, peer, 2); err != nil {
				return err
			}
		}
	}
	return nil
}

func bandwidth(w *mpi.World, size, iters, window int) (float64, error) {
	res := make(chan float64, 1)
	err := w.Run(func(c *mpi.Comm) error {
		peer := 1 - c.Rank()
		if c.Rank() == 0 {
			payload := make([]byte, size)
			start := time.Now()
			for it := 0; it < iters; it += window {
				reqs := make([]*mpi.Request, 0, window)
				for k := 0; k < window && it+k < iters; k++ {
					r, err := c.Isend(payload, peer, 1)
					if err != nil {
						return err
					}
					reqs = append(reqs, r)
				}
				if err := mpi.WaitAll(reqs...); err != nil {
					return err
				}
			}
			// Drain marker: wait for the receiver's done token so the
			// measurement covers delivery, not just local completion.
			token := make([]byte, 1)
			if _, err := c.Recv(token, peer, 9); err != nil {
				return err
			}
			res <- float64(size) * float64(iters) / time.Since(start).Seconds() / 1e6
			return nil
		}
		buf := make([]byte, size)
		for it := 0; it < iters; it++ {
			if _, err := c.Recv(buf, peer, 1); err != nil {
				return err
			}
		}
		return c.Send([]byte{1}, peer, 9)
	})
	if err != nil {
		return 0, err
	}
	return <-res, nil
}

func messageRate(w *mpi.World, count, window int) (float64, error) {
	res := make(chan float64, 1)
	err := w.Run(func(c *mpi.Comm) error {
		peer := 1 - c.Rank()
		if c.Rank() == 0 {
			start := time.Now()
			for it := 0; it < count; it += window {
				reqs := make([]*mpi.Request, 0, window)
				for k := 0; k < window && it+k < count; k++ {
					r, err := c.Isend(nil, peer, 1)
					if err != nil {
						return err
					}
					reqs = append(reqs, r)
				}
				if err := mpi.WaitAll(reqs...); err != nil {
					return err
				}
			}
			token := make([]byte, 1)
			if _, err := c.Recv(token, peer, 9); err != nil {
				return err
			}
			res <- float64(count) / time.Since(start).Seconds()
			return nil
		}
		for it := 0; it < count; it++ {
			if _, err := c.Recv(nil, peer, 1); err != nil {
				return err
			}
		}
		return c.Send([]byte{1}, peer, 9)
	})
	if err != nil {
		return 0, err
	}
	return <-res, nil
}
