// Command collbench runs the offloaded-vs-host-driven collective
// experiment (internal/experiments E15): triggered-operation chains that
// progress on the delivery lanes while every rank burns CPU, against the
// same binary tree driven by host code between bursts of compute.
//
// Usage:
//
//	collbench [-procs 2,8,64] [-burns 0,2ms] [-iters 8] [-vec 8] [-lanes 1]
//	          [-transport loopback] [-loss 0] [-trace trace.json]
//	          [-metrics metrics.prom] [-bench BENCH_coll.json]
//
// -transport selects loopback (in-process), myrinet / gige (simulated
// packet fabrics under rtscts reliability), or udp (real kernel sockets).
// -loss injects a per-packet loss rate on the simulated fabrics — the
// triggered chains must then ride the reliability layer's retransmissions.
//
// -trace captures the flight recorder across the run; feed the file to
// cmd/tracecheck -require-offload to assert trig-fire instants (triggered
// operations executing on delivery lanes) land inside compute-burn spans —
// collectives progressing while the host makes no library calls. -bench
// writes the measurements as an internal/benchfmt summary so runs can be
// diffed like any other benchmark artifact.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/experiments"
	"repro/internal/obs/metrics"
	"repro/internal/obs/trace"
	"repro/internal/rtscts"
	"repro/internal/transport/simnet"
	"repro/portals"
)

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad proc count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseBurns(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "0" {
			out = append(out, 0)
			continue
		}
		d, err := time.ParseDuration(f)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad burn duration %q", f)
		}
		out = append(out, d)
	}
	return out, nil
}

func fabricFor(name string, loss float64) (portals.Fabric, error) {
	sim := func(cfg simnet.Config) portals.Fabric {
		cfg.LossRate = loss
		return portals.SimFabric(cfg, rtscts.DefaultConfig())
	}
	switch name {
	case "loopback":
		if loss != 0 {
			return portals.Fabric{}, fmt.Errorf("-loss needs a simulated fabric (myrinet or gige)")
		}
		return portals.Loopback(), nil
	case "myrinet":
		return sim(simnet.Myrinet()), nil
	case "gige":
		return sim(simnet.GigE()), nil
	case "udp":
		if loss != 0 {
			return portals.Fabric{}, fmt.Errorf("-loss needs a simulated fabric; use udp/proxytest for real-socket loss")
		}
		return portals.UDP(), nil
	default:
		return portals.Fabric{}, fmt.Errorf("unknown transport %q (loopback, myrinet, gige, udp)", name)
	}
}

func main() {
	procsFlag := flag.String("procs", "2,8,64", "comma-separated process counts")
	burnsFlag := flag.String("burns", "0,2ms", "comma-separated compute-burn durations (0 = bare latency)")
	iters := flag.Int("iters", 8, "repetitions per operation")
	vec := flag.Int("vec", 8, "allreduce vector length (float64 elements)")
	lanes := flag.Int("lanes", 1, "delivery lanes per node")
	transport := flag.String("transport", "loopback", "fabric: loopback, myrinet, gige, udp")
	loss := flag.Float64("loss", 0, "per-packet loss rate on simulated fabrics")
	traceOut := flag.String("trace", "", "write a Chrome Trace Event (Perfetto) capture to this file")
	metricsOut := flag.String("metrics", "", "write the final Prometheus text exposition to this file")
	benchOut := flag.String("bench", "", "write the measurements as a benchfmt JSON summary to this file")
	flag.Parse()

	procs, err := parseProcs(*procsFlag)
	if err != nil {
		fatal(err)
	}
	burns, err := parseBurns(*burnsFlag)
	if err != nil {
		fatal(err)
	}
	fab, err := fabricFor(*transport, *loss)
	if err != nil {
		fatal(err)
	}

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.Enable(trace.Config{})
	}
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
	}
	cfg := experiments.OffloadConfig{Iters: *iters, Vec: *vec, Lanes: *lanes, Metrics: reg}

	fmt.Printf("# E15: offloaded (triggered) vs host-driven collectives\n")
	fmt.Printf("# transport=%s loss=%g lanes=%d iters=%d vec=%d\n",
		*transport, *loss, *lanes, *iters, *vec)
	fmt.Printf("%-7s %-10s %-10s %-14s %-14s %-14s\n",
		"procs", "op", "burn", "offloaded/op", "host/op", "hidden")

	points, err := experiments.OffloadSweep(fab, procs, burns, cfg)
	if err != nil {
		fatal(err)
	}
	for _, p := range points {
		fmt.Printf("%-7d %-10s %-10v %-14v %-14v %-14v\n",
			p.Procs, p.Op, p.Burn,
			p.Offloaded.Round(time.Microsecond), p.Host.Round(time.Microsecond),
			p.Hidden.Round(time.Microsecond))
	}

	if reg != nil {
		if err := writeFile(*metricsOut, reg.WriteText); err != nil {
			fatal(fmt.Errorf("metrics: %w", err))
		}
		fmt.Printf("# metrics: %s\n", *metricsOut)
	}
	if rec != nil {
		trace.Disable()
		if err := writeFile(*traceOut, func(w io.Writer) error {
			return trace.WriteChromeTrace(w, rec.Snapshot())
		}); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		fmt.Printf("# trace: %s (open in ui.perfetto.dev; validate with tracecheck -require-offload)\n", *traceOut)
	}
	if *benchOut != "" {
		s := benchfmt.New()
		s.Label = "collbench"
		s.Env["transport"] = *transport
		for _, p := range points {
			for _, mode := range []struct {
				name string
				d    time.Duration
			}{{"offloaded", p.Offloaded}, {"host", p.Host}} {
				s.Results = append(s.Results, benchfmt.Result{
					Name:       fmt.Sprintf("Coll/%s/%s/procs=%d/burn=%v", mode.name, p.Op, p.Procs, p.Burn),
					Package:    "repro/internal/experiments",
					Cpus:       1,
					Iterations: int64(*iters),
					NsPerOp:    float64(mode.d.Nanoseconds()),
				})
			}
		}
		if err := s.WriteFile(*benchOut); err != nil {
			fatal(fmt.Errorf("bench: %w", err))
		}
		fmt.Printf("# bench: %s\n", *benchOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "collbench:", err)
	os.Exit(1)
}

func writeFile(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
