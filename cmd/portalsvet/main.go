// Command portalsvet runs the repo's custom static-analysis suite: five
// named checks enforcing the Portals concurrency invariants (application
// bypass, lock discipline, atomics-only counters, checked errors, and
// goroutine lifecycle). See docs/LINT.md and internal/lint.
//
// Usage:
//
//	go run ./cmd/portalsvet [-checks a,b] [-list] [packages]
//
// Packages default to ./... . Diagnostics print as
// "file:line: [check] message"; the exit code is 1 when there are
// findings, 2 when the module fails to load or type-check, 0 otherwise.
// Suppress an individual finding with
//
//	//lint:ignore <check> <reason>
//
// on the offending line or the one above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	listFlag := flag.Bool("list", false, "list available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: portalsvet [-checks a,b] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := lint.AllChecks()
	if *listFlag {
		for _, c := range all {
			fmt.Printf("%-20s %s\n", c.Name(), c.Doc())
		}
		return
	}

	checks := all
	if *checksFlag != "" {
		byName := make(map[string]lint.Check, len(all))
		for _, c := range all {
			byName[c.Name()] = c
		}
		checks = nil
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			c, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "portalsvet: unknown check %q (use -list)\n", name)
				os.Exit(2)
			}
			checks = append(checks, c)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "portalsvet: %v\n", err)
		os.Exit(2)
	}

	diags := prog.Run(checks)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "portalsvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
