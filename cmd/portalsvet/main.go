// Command portalsvet runs the repo's custom static-analysis suite: the
// named checks enforcing the Portals concurrency invariants (application
// bypass, lock discipline, lock ordering, static zero-alloc proofs,
// atomics-only counters, checked errors, and goroutine lifecycle). See
// docs/LINT.md and internal/lint.
//
// Usage:
//
//	go run ./cmd/portalsvet [flags] [packages]
//
// Packages default to ./... . Diagnostics print as
// "file:line: [check] message"; the exit code is 1 when there are
// (new) findings, 2 when the module fails to load or type-check, 0
// otherwise. Suppress an individual finding with
//
//	//lint:ignore <check> <reason>
//
// on the offending line or the one above it.
//
// CI integration:
//
//	-json                 emit findings as JSON (stdout, or -o file)
//	-sarif                emit findings as SARIF 2.1.0 (stdout, or -o file)
//	                      for GitHub code scanning; mutually exclusive
//	                      with -json
//	-baseline file        accepted findings; exit 1 only on NEW findings
//	-write-baseline file  record the current findings as the baseline
//	-importer-cache dir   persist the stdlib importer's export-data index
//	                      in dir (keyed by Go version); warm runs skip
//	                      type-checking the standard library from source.
//	                      Falls back to the source importer on any error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	listFlag := flag.Bool("list", false, "list available checks and exit")
	jsonFlag := flag.Bool("json", false, "emit findings as JSON")
	sarifFlag := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	outFlag := flag.String("o", "", "with -json/-sarif: write findings to this file instead of stdout")
	baselineFlag := flag.String("baseline", "", "baseline file of accepted findings; fail only on new ones")
	writeBaselineFlag := flag.String("write-baseline", "", "record the current findings as the baseline and exit")
	importerCacheFlag := flag.String("importer-cache", "", "directory for the persistent stdlib importer cache (docs/LINT.md)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: portalsvet [-checks a,b] [-list] [-json|-sarif [-o file]] [-baseline file | -write-baseline file] [-importer-cache dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *importerCacheFlag != "" {
		// Best-effort: a missing go binary or pruned build cache degrades
		// to the (slower, identical) source importer, never to a failure.
		if err := lint.SetImporterCache(*importerCacheFlag); err != nil {
			fmt.Fprintf(os.Stderr, "portalsvet: importer cache disabled: %v\n", err)
		}
	}

	if *jsonFlag && *sarifFlag {
		fmt.Fprintln(os.Stderr, "portalsvet: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	all := lint.AllChecks()
	if *listFlag {
		for _, c := range all {
			fmt.Printf("%-20s %s\n", c.Name(), c.Doc())
		}
		return
	}

	checks := all
	if *checksFlag != "" {
		byName := make(map[string]lint.Check, len(all))
		for _, c := range all {
			byName[c.Name()] = c
		}
		checks = nil
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			c, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "portalsvet: unknown check %q (use -list)\n", name)
				os.Exit(2)
			}
			checks = append(checks, c)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "portalsvet: %v\n", err)
		os.Exit(2)
	}

	diags := prog.Run(checks)
	findings := prog.Findings(diags)

	if *writeBaselineFlag != "" {
		if err := lint.WriteBaseline(*writeBaselineFlag, findings); err != nil {
			fmt.Fprintf(os.Stderr, "portalsvet: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "portalsvet: wrote %d finding(s) to %s\n", len(findings), *writeBaselineFlag)
		return
	}

	// With a baseline, only findings not in it fail the run; without one,
	// every finding is "new".
	failing := len(findings)
	if *baselineFlag != "" {
		n, err := lint.ApplyBaseline(*baselineFlag, findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "portalsvet: %v\n", err)
			os.Exit(2)
		}
		failing = n
	}

	if *jsonFlag {
		if *outFlag != "" {
			if err := lint.WriteJSON(*outFlag, findings); err != nil {
				fmt.Fprintf(os.Stderr, "portalsvet: %v\n", err)
				os.Exit(2)
			}
		} else {
			data, err := lint.MarshalFindings(findings)
			if err != nil {
				fmt.Fprintf(os.Stderr, "portalsvet: %v\n", err)
				os.Exit(2)
			}
			os.Stdout.Write(data)
		}
	}
	if *sarifFlag {
		if *outFlag != "" {
			if err := lint.WriteSARIF(*outFlag, findings); err != nil {
				fmt.Fprintf(os.Stderr, "portalsvet: %v\n", err)
				os.Exit(2)
			}
		} else {
			data, err := lint.MarshalSARIF(findings)
			if err != nil {
				fmt.Fprintf(os.Stderr, "portalsvet: %v\n", err)
				os.Exit(2)
			}
			os.Stdout.Write(data)
		}
	}
	if (!*jsonFlag && !*sarifFlag) || *outFlag != "" {
		cwd, _ := os.Getwd()
		for _, d := range diags {
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
					d.Pos.Filename = rel
				}
			}
			fmt.Println(d)
		}
	}
	if failing > 0 {
		if *baselineFlag != "" {
			fmt.Fprintf(os.Stderr, "portalsvet: %d new finding(s) (%d total, baseline %s)\n",
				failing, len(findings), *baselineFlag)
		} else {
			fmt.Fprintf(os.Stderr, "portalsvet: %d finding(s)\n", failing)
		}
		os.Exit(1)
	}
}
