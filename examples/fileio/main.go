// Fileio: a miniature remote filesystem spoken directly over Portals —
// §2's motivation that on Cplant "the only way to communicate with a
// process on a compute node is via Portals", so the same primitives must
// carry application messages AND "I/O protocols to a remote filesystem".
//
// Protocol (all raw Portals, no MPI):
//
//   - Control portal: clients PUT open requests; the server application
//     consumes them from its event queue (a classic served protocol).
//
//   - Data portal: for every opened file the server attaches one match
//     entry whose match bits are the file handle, backed by the file's
//     block buffer with remotely-managed offsets. Clients then READ with
//     Portals GET and WRITE with Portals PUT at byte offsets — the server
//     application is completely bypassed on the data path.
//
//     go run ./examples/fileio
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/portals"
)

// Portal assignments follow docs/PROTOCOL.md §5: index 5 belongs to the
// triggered collective library (coll.TGroup), so the file service sits
// above it.
const (
	ptlCtrl portals.PtlIndex = 6
	ptlData portals.PtlIndex = 7

	ctrlBits  portals.MatchBits = 0xC0117401 // control requests
	replyBase portals.MatchBits = 1 << 32    // server → client replies
)

// openReq is the control message: fixed header + name.
// layout: size(8) | clientRank(8) | nameLen(2) | name...
func encodeOpen(size uint64, client uint64, name string) []byte {
	buf := make([]byte, 18+len(name))
	binary.BigEndian.PutUint64(buf[0:], size)
	binary.BigEndian.PutUint64(buf[8:], client)
	binary.BigEndian.PutUint16(buf[16:], uint16(len(name)))
	copy(buf[18:], name)
	return buf
}

func decodeOpen(buf []byte) (size, client uint64, name string, err error) {
	if len(buf) < 18 {
		return 0, 0, "", errors.New("short open request")
	}
	n := int(binary.BigEndian.Uint16(buf[16:]))
	if len(buf) < 18+n {
		return 0, 0, "", errors.New("truncated name")
	}
	return binary.BigEndian.Uint64(buf[0:]), binary.BigEndian.Uint64(buf[8:]), string(buf[18 : 18+n]), nil
}

// server owns the "disk": it serves opens and exposes file blocks.
type server struct {
	ni     *portals.NI
	eq     portals.Handle
	ctrl   []byte // served control-request buffer (locally-managed append)
	nextFH uint64
	files  map[string]uint64
}

func newServer(ni *portals.NI) (*server, error) {
	s := &server{ni: ni, ctrl: make([]byte, 64*1024), nextFH: 0x1000, files: map[string]uint64{}}
	eq, err := ni.EQAlloc(128)
	if err != nil {
		return nil, err
	}
	s.eq = eq
	me, err := ni.MEAttach(ptlCtrl, portals.AnyProcess, ctrlBits, 0, portals.Retain, portals.After)
	if err != nil {
		return nil, err
	}
	// Control requests append into the served buffer.
	_, err = ni.MDAttach(me, portals.MD{
		Start:     s.ctrl,
		Threshold: portals.ThresholdInfinite,
		Options:   portals.MDOpPut,
		EQ:        eq,
		UserPtr:   "ctrl",
	}, portals.Retain)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// serve handles count open requests, then returns.
func (s *server) serve(count int, clients []portals.ProcessID) error {
	for handled := 0; handled < count; {
		ev, err := s.ni.EQPoll(s.eq, 10*time.Second)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		if ev.Type != portals.EventPut || ev.UserPtr != "ctrl" {
			continue
		}
		// The request body sits in the served buffer at the event's
		// offset/length coordinates.
		size, client, name, err := decodeOpen(s.ctrl[ev.Offset : ev.Offset+ev.MLength])
		if err != nil {
			return err
		}
		fh, ok := s.files[name]
		if !ok {
			fh = s.nextFH
			s.nextFH++
			s.files[name] = fh
			// Expose the file's storage on the data portal: match bits =
			// file handle, offsets managed by the client. From here on
			// reads and writes bypass this loop entirely.
			me, err := s.ni.MEAttach(ptlData, portals.AnyProcess, portals.MatchBits(fh), 0, portals.Retain, portals.After)
			if err != nil {
				return err
			}
			if _, err := s.ni.MDAttach(me, portals.MD{
				Start:     make([]byte, size),
				Threshold: portals.ThresholdInfinite,
				Options:   portals.MDOpPut | portals.MDOpGet | portals.MDManageRemote | portals.MDTruncate,
			}, portals.Retain); err != nil {
				return err
			}
			fmt.Printf("server: created %q (%d bytes), handle %#x\n", name, size, fh)
		}
		// Reply with the handle to the client's reply slot.
		reply := make([]byte, 8)
		binary.BigEndian.PutUint64(reply, fh)
		md2, err := s.ni.MDBind(portals.MD{Start: reply, Threshold: 1}, portals.Unlink)
		if err != nil {
			return err
		}
		if err := s.ni.Put(md2, portals.NoAckReq, clients[client], ptlCtrl, 0, replyBase|portals.MatchBits(client), 0); err != nil {
			return err
		}
		handled++
	}
	return nil
}

// client is one compute process using the remote file service.
type client struct {
	ni    *portals.NI
	eq    portals.Handle
	rank  uint64
	reply []byte
}

func newClient(ni *portals.NI, rank uint64) (*client, error) {
	c := &client{ni: ni, rank: rank, reply: make([]byte, 8)}
	eq, err := ni.EQAlloc(64)
	if err != nil {
		return nil, err
	}
	c.eq = eq
	me, err := ni.MEAttach(ptlCtrl, portals.AnyProcess, replyBase|portals.MatchBits(rank), 0, portals.Retain, portals.After)
	if err != nil {
		return nil, err
	}
	if _, err := ni.MDAttach(me, portals.MD{
		Start:     c.reply,
		Threshold: portals.ThresholdInfinite,
		Options:   portals.MDOpPut | portals.MDManageRemote,
		EQ:        eq,
		UserPtr:   "reply",
	}, portals.Retain); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *client) open(server portals.ProcessID, name string, size uint64) (uint64, error) {
	req := encodeOpen(size, c.rank, name)
	md, err := c.ni.MDBind(portals.MD{Start: req, Threshold: 1}, portals.Unlink)
	if err != nil {
		return 0, err
	}
	if err := c.ni.Put(md, portals.NoAckReq, server, ptlCtrl, 0, ctrlBits, 0); err != nil {
		return 0, err
	}
	for {
		ev, err := c.ni.EQPoll(c.eq, 10*time.Second)
		if err != nil {
			return 0, err
		}
		if ev.Type == portals.EventPut && ev.UserPtr == "reply" {
			return binary.BigEndian.Uint64(c.reply), nil
		}
	}
}

// write puts data into the file at offset; remote completion via ack.
func (c *client) write(server portals.ProcessID, fh uint64, offset uint64, data []byte) error {
	md, err := c.ni.MDBind(portals.MD{Start: data, Threshold: 2, EQ: c.eq, UserPtr: "io"}, portals.Unlink)
	if err != nil {
		return err
	}
	if err := c.ni.Put(md, portals.AckReq, server, ptlData, 0, portals.MatchBits(fh), offset); err != nil {
		return err
	}
	return c.waitIO(portals.EventAck)
}

// read gets data from the file at offset.
func (c *client) read(server portals.ProcessID, fh uint64, offset uint64, buf []byte) error {
	md, err := c.ni.MDBind(portals.MD{Start: buf, Threshold: 1, EQ: c.eq, UserPtr: "io"}, portals.Unlink)
	if err != nil {
		return err
	}
	if err := c.ni.Get(md, server, ptlData, 0, portals.MatchBits(fh), offset); err != nil {
		return err
	}
	return c.waitIO(portals.EventReply)
}

func (c *client) waitIO(want portals.EventType) error {
	for {
		ev, err := c.ni.EQPoll(c.eq, 10*time.Second)
		if err != nil {
			return err
		}
		if ev.UserPtr == "io" && ev.Type == want {
			return nil
		}
	}
}

func main() {
	m := portals.NewMachine(portals.Loopback())
	defer m.Close()

	srvNI, err := m.NIInit(1, 1, portals.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	cliNI, err := m.NIInit(2, 1, portals.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	clients := []portals.ProcessID{cliNI.ID()}

	srv, err := newServer(srvNI)
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.serve(1, clients) }()

	cli, err := newClient(cliNI, 0)
	if err != nil {
		log.Fatal(err)
	}
	fh, err := cli.open(srvNI.ID(), "results.dat", 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: opened results.dat, handle %#x\n", fh)

	record := []byte("timestep=42 energy=-1.0625e3 walltime=17.3s")
	if err := cli.write(srvNI.ID(), fh, 128, record); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: wrote %d bytes at offset 128 (one-sided, server app not involved)\n", len(record))

	back := make([]byte, len(record))
	if err := cli.read(srvNI.ID(), fh, 128, back); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: read back: %q\n", back)
	if string(back) != string(record) {
		log.Fatal("read-back mismatch")
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok: control served by the application, data path fully bypassed")
}
