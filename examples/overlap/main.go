// Overlap: the paper's headline property as a self-contained demo. Two
// ranks exchange a batch of large messages; rank 0 computes while the
// exchange is in flight and then measures how much message handling
// remained. With the Portals-based MPI the delivery engine works during
// the compute phase, so the final wait is (nearly) free — Figure 6's
// left curve, in example form, with the effective overlap printed.
//
//	go run ./examples/overlap [-batch 10] [-size 51200] [-work 8ms]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/mpi"
	"repro/portals"
)

func main() {
	batch := flag.Int("batch", 10, "messages per batch")
	size := flag.Int("size", 50*1024, "message size in bytes")
	work := flag.Duration("work", 8*time.Millisecond, "compute interval")
	flag.Parse()

	m := portals.NewMachine(portals.Myrinet())
	defer m.Close()
	w, err := mpi.NewWorld(m, 2, mpi.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// First pass with zero work measures the full message-handling time;
	// the second overlaps it with computation.
	base, err := measure(w, *batch, *size, 0)
	if err != nil {
		log.Fatal(err)
	}
	overlapped, err := measure(w, *batch, *size, *work)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch of %d x %d KB over simulated Myrinet\n", *batch, *size/1024)
	fmt.Printf("  no compute:   wait %v  (full message handling)\n", base.Round(time.Microsecond))
	fmt.Printf("  %v compute: wait %v\n", *work, overlapped.Round(time.Microsecond))
	hidden := base - overlapped
	if hidden < 0 {
		hidden = 0
	}
	pct := 100 * float64(hidden) / float64(base)
	fmt.Printf("  communication hidden behind compute: %v (%.0f%%)\n",
		hidden.Round(time.Microsecond), pct)
	fmt.Println("the delivery engine moved the data while the application computed —")
	fmt.Println("no MPI calls were made during the compute interval (application bypass)")
}

// measure runs one Figure 5 iteration and returns rank 0's wait time.
func measure(w *mpi.World, batch, size int, work time.Duration) (time.Duration, error) {
	waits := make(chan time.Duration, 1)
	payload := make([]byte, size)
	err := w.Run(func(c *mpi.Comm) error {
		peer := 1 - c.Rank()
		recvs := make([]*mpi.Request, batch)
		for j := range recvs {
			r, err := c.Irecv(make([]byte, size), peer, j)
			if err != nil {
				return err
			}
			recvs[j] = r
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		sends := make([]*mpi.Request, batch)
		for j := range sends {
			s, err := c.Isend(payload, peer, j)
			if err != nil {
				return err
			}
			sends[j] = s
		}
		if c.Rank() == 0 {
			compute(work)
			tA := time.Now()
			if err := mpi.WaitAll(append(recvs, sends...)...); err != nil {
				return err
			}
			waits <- time.Since(tA)
			return nil
		}
		return mpi.WaitAll(append(recvs, sends...)...)
	})
	if err != nil {
		return 0, err
	}
	return <-waits, nil
}

// compute burns CPU without touching the message-passing library,
// yielding the processor so the (goroutine-based) delivery engine gets
// the cycles a NIC processor would have.
func compute(d time.Duration) {
	acc := uint64(1)
	end := time.Now().Add(d)
	for time.Now().Before(end) {
		for k := 0; k < 200; k++ {
			acc ^= acc<<13 ^ acc>>7 ^ acc<<17
		}
		runtime.Gosched()
	}
	runtime.KeepAlive(acc)
}
