// Halo: a 2-D Jacobi heat-diffusion solver with halo exchange over the
// MPI layer — the workload class the paper's introduction motivates, and
// the pattern application bypass exists for: pre-post the halo receives,
// compute the interior while neighbour rows stream directly into the
// halo buffers, then finish the edges.
//
// The grid is decomposed by rows across ranks; every iteration each rank
// exchanges its boundary rows with its neighbours. Run with:
//
//	go run ./examples/halo [-n 4] [-rows 256] [-cols 256] [-iters 50]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/mpi"
	"repro/portals"
)

const (
	tagUp   = 1
	tagDown = 2
)

func main() {
	n := flag.Int("n", 4, "number of ranks")
	rows := flag.Int("rows", 256, "global rows")
	cols := flag.Int("cols", 256, "columns")
	iters := flag.Int("iters", 50, "Jacobi iterations")
	flag.Parse()

	m := portals.NewMachine(portals.Myrinet())
	defer m.Close()
	w, err := mpi.NewWorld(m, *n, mpi.Config{})
	if err != nil {
		log.Fatal(err)
	}

	err = w.Run(func(c *mpi.Comm) error {
		return solve(c, *rows, *cols, *iters)
	})
	if err != nil {
		log.Fatal(err)
	}
}

func solve(c *mpi.Comm, globalRows, cols, iters int) error {
	rank, size := c.Rank(), c.Size()
	local := globalRows / size
	if rank < globalRows%size {
		local++
	}
	// Grid with two ghost rows; hot left wall as boundary condition.
	cur := newGrid(local+2, cols)
	next := newGrid(local+2, cols)
	for r := 0; r < local+2; r++ {
		cur[r][0] = 100.0
		next[r][0] = 100.0
	}

	up, down := rank-1, rank+1
	rowBytes := make([]byte, 8*cols)
	haloUp := make([]byte, 8*cols)
	haloDown := make([]byte, 8*cols)

	for it := 0; it < iters; it++ {
		// Pre-post halo receives, then send boundary rows.
		var reqs []*mpi.Request
		if up >= 0 {
			r, err := c.Irecv(haloUp, up, tagDown)
			if err != nil {
				return err
			}
			reqs = append(reqs, r)
			s, err := c.Isend(encodeRow(cur[1], rowBytes), up, tagUp)
			if err != nil {
				return err
			}
			reqs = append(reqs, s)
		}
		if down < size {
			r, err := c.Irecv(haloDown, down, tagUp)
			if err != nil {
				return err
			}
			reqs = append(reqs, r)
			buf := make([]byte, 8*cols)
			s, err := c.Isend(encodeRow(cur[local], buf), down, tagDown)
			if err != nil {
				return err
			}
			reqs = append(reqs, s)
		}

		// Interior update overlaps the exchange: rows 2..local-1 need no
		// ghost data, and the engine delivers the halos meanwhile.
		for r := 2; r < local; r++ {
			stencilRow(next[r], cur[r-1], cur[r], cur[r+1])
		}

		if err := mpi.WaitAll(reqs...); err != nil {
			return err
		}
		if up >= 0 {
			decodeRow(haloUp, cur[0])
		}
		if down < size {
			decodeRow(haloDown, cur[local+1])
		}
		// Edge rows now have fresh ghosts.
		if local >= 1 {
			stencilRow(next[1], cur[0], cur[1], cur[2])
		}
		if local >= 2 {
			stencilRow(next[local], cur[local-1], cur[local], cur[local+1])
		}
		cur, next = next, cur

		if it%10 == 9 {
			res := []float64{localResidual(cur, local, cols)}
			if err := c.Allreduce(res, mpi.Sum); err != nil {
				return err
			}
			if rank == 0 {
				fmt.Printf("iter %3d  residual %.6f\n", it+1, math.Sqrt(res[0]))
			}
		}
	}

	// Global checksum so every rank's contribution is verified.
	sum := []float64{gridSum(cur, local, cols)}
	if err := c.Allreduce(sum, mpi.Sum); err != nil {
		return err
	}
	if rank == 0 {
		fmt.Printf("done: %d ranks, %dx%d grid, %d iterations, heat checksum %.3f\n",
			size, globalRows, cols, iters, sum[0])
	}
	return nil
}

func newGrid(rows, cols int) [][]float64 {
	g := make([][]float64, rows)
	for i := range g {
		g[i] = make([]float64, cols)
	}
	return g
}

func stencilRow(dst, above, row, below []float64) {
	for j := 1; j < len(row)-1; j++ {
		dst[j] = 0.25 * (above[j] + below[j] + row[j-1] + row[j+1])
	}
	dst[0], dst[len(row)-1] = row[0], row[len(row)-1]
}

func localResidual(g [][]float64, local, cols int) float64 {
	var s float64
	for r := 1; r <= local; r++ {
		for j := 1; j < cols-1; j++ {
			d := g[r][j] - 0.25*(g[r-1][j]+g[r+1][j]+g[r][j-1]+g[r][j+1])
			s += d * d
		}
	}
	return s
}

func gridSum(g [][]float64, local, cols int) float64 {
	var s float64
	for r := 1; r <= local; r++ {
		for j := 0; j < cols; j++ {
			s += g[r][j]
		}
	}
	return s
}

func encodeRow(row []float64, buf []byte) []byte {
	for i, v := range row {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return buf
}

func decodeRow(buf []byte, row []float64) {
	for i := range row {
		row[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
}
