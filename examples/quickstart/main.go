// Quickstart: the smallest complete Portals program. One process arms a
// portal (match entry + memory descriptor + event queue), another puts a
// message into it, and the receiver's data has arrived before it even
// looks — delivery is done by the engine, not by application code.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/portals"
)

func main() {
	// A machine on the loopback fabric; Myrinet-class simulation and TCP
	// are one-line swaps: portals.Myrinet(), portals.TCP().
	m := portals.NewMachine(portals.Loopback())
	defer m.Close()

	// Two processes: (nid 1, pid 1) receives, (nid 2, pid 1) sends.
	recv, err := m.NIInit(1, 1, portals.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	send, err := m.NIInit(2, 1, portals.Limits{})
	if err != nil {
		log.Fatal(err)
	}

	// Receiver: event queue, match entry for match bits 42, and a memory
	// descriptor pointing at user memory (Figure 3's structures).
	eq, err := recv.EQAlloc(16)
	if err != nil {
		log.Fatal(err)
	}
	me, err := recv.MEAttach(0, portals.AnyProcess, 42, 0, portals.Retain, portals.After)
	if err != nil {
		log.Fatal(err)
	}
	inbox := make([]byte, 64)
	if _, err := recv.MDAttach(me, portals.MD{
		Start:     inbox,
		Threshold: portals.ThresholdInfinite,
		Options:   portals.MDOpPut,
		EQ:        eq,
	}, portals.Retain); err != nil {
		log.Fatal(err)
	}

	// Sender: bind a descriptor over the payload and put it to the
	// receiver's portal 0 with match bits 42 (Figure 1).
	md, err := send.MDBind(portals.MD{
		Start: []byte("hello, Portals 3.0"), Threshold: 1,
	}, portals.Unlink)
	if err != nil {
		log.Fatal(err)
	}
	if err := send.Put(md, portals.NoAckReq, recv.ID(), 0, 0, 42, 0); err != nil {
		log.Fatal(err)
	}

	// The receiver was never involved: it just finds the completion event
	// (and the data already in its buffer).
	ev, err := recv.EQPoll(eq, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event: %v from %v, %d bytes, match bits %#x\n",
		ev.Type, ev.Initiator, ev.MLength, uint64(ev.MatchBits))
	fmt.Printf("inbox: %q\n", inbox[:ev.MLength])

	st := recv.Status()
	fmt.Printf("receiver counters: %s\n", st)
}
