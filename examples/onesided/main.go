// Onesided: a distributed histogram built with the shmem-style one-sided
// layer (§4.4's one-sided addressing model). Every PE owns a shard of the
// histogram bins and scatters increments into the other PEs' shards with
// remote puts after reading their current values with remote gets — the
// target PEs never participate in the transfers.
//
//	go run ./examples/onesided [-n 4] [-bins 64] [-samples 10000]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/internal/shmem"
	"repro/portals"
)

const histRegion = 1

func main() {
	n := flag.Int("n", 4, "number of PEs")
	bins := flag.Int("bins", 64, "histogram bins (split across PEs)")
	samples := flag.Int("samples", 10000, "samples per PE")
	flag.Parse()
	if *bins%*n != 0 {
		log.Fatalf("bins (%d) must divide evenly across %d PEs", *bins, *n)
	}

	m := portals.NewMachine(portals.Loopback())
	defer m.Close()
	nis, err := m.LaunchJob(*n)
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]portals.ProcessID, *n)
	for r, ni := range nis {
		ids[r] = ni.ID()
	}

	perPE := *bins / *n
	pes := make([]*shmem.PE, *n)
	shards := make([][]byte, *n)
	for r, ni := range nis {
		pe, err := shmem.NewPE(ni, r, ids)
		if err != nil {
			log.Fatal(err)
		}
		shards[r] = make([]byte, 8*perPE) // uint64 counters
		if err := pe.Expose(histRegion, shards[r]); err != nil {
			log.Fatal(err)
		}
		if err := pe.ExposeBarrier(); err != nil {
			log.Fatal(err)
		}
		pes[r] = pe
	}

	var wg sync.WaitGroup
	for r, pe := range pes {
		wg.Add(1)
		go func(rank int, pe *shmem.PE) {
			defer wg.Done()
			if err := worker(pe, rank, *bins, perPE, *samples); err != nil {
				log.Fatal(err)
			}
		}(r, pe)
	}
	wg.Wait()

	// PE 0 prints the result; shards are globally visible memory.
	total := uint64(0)
	fmt.Printf("histogram (%d bins over %d PEs):\n", *bins, *n)
	for r := 0; r < *n; r++ {
		for b := 0; b < perPE; b++ {
			v := binary.LittleEndian.Uint64(shards[r][b*8:])
			total += v
			if v > 0 {
				fmt.Printf("  bin %3d (owner PE %d): %d\n", r*perPE+b, r, v)
			}
		}
	}
	fmt.Printf("total samples accounted: %d (expected %d)\n", total, *n**samples)
}

// worker samples a distribution and increments remote bins one-sidedly.
// Each bin has a single writer epoch per PE (coordinated by barriers), so
// read-modify-write without remote atomics is safe here: PEs take turns.
func worker(pe *shmem.PE, rank, bins, perPE, samples int) error {
	rng := rand.New(rand.NewSource(int64(rank) + 1))
	local := make([]uint64, bins)
	for i := 0; i < samples; i++ {
		// A skewed distribution so the printout is interesting.
		b := int(rng.ExpFloat64() * float64(bins) / 6)
		if b >= bins {
			b = bins - 1
		}
		local[b]++
	}
	// Token-ring epochs: one PE merges at a time (no remote atomics in
	// Portals 3.0 — the paper lists atomics among future extensions).
	for turn := 0; turn < pe.Size(); turn++ {
		if turn == rank {
			buf := make([]byte, 8)
			for b, add := range local {
				if add == 0 {
					continue
				}
				owner := b / perPE
				off := uint64((b % perPE) * 8)
				if err := pe.Get(owner, histRegion, off, buf); err != nil {
					return err
				}
				binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(buf)+add)
				if err := pe.Put(owner, histRegion, off, buf); err != nil {
					return err
				}
			}
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
	}
	return nil
}
