# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build lint lint-sarif lint-baseline test race short bench bench-smoke bench-diff sweep examples ci clean trace-smoke coll-smoke

all: build lint test

build:
	$(GO) build ./...
	$(GO) vet ./...

# lint runs portalsvet, the repo's own static-analysis suite (docs/LINT.md):
# application-bypass, lock-discipline, lock-order, zero-alloc, atomics-only,
# checked-error, goroutine-lifecycle, guarded-by, mixed-atomic, seqlock,
# ownership-lifetime, and stale-suppression invariants. Only findings not in
# the checked-in baseline fail the run. LINTCACHE persists the stdlib
# importer's export-data index across runs (~10x faster warm starts, see
# docs/LINT.md); set LINTCACHE= to force the source importer.
LINTCACHE ?= .portalsvet-cache
LINTFLAGS = $(if $(LINTCACHE),-importer-cache $(LINTCACHE))
lint:
	$(GO) run ./cmd/portalsvet $(LINTFLAGS) -baseline lint/baseline.json ./...

# lint-sarif is the same gate, additionally writing a SARIF 2.1.0 report
# (portalsvet.sarif) for GitHub code scanning or any SARIF viewer. New
# findings are "error"-level results, accepted baseline ones "warning".
lint-sarif:
	$(GO) run ./cmd/portalsvet $(LINTFLAGS) -baseline lint/baseline.json -sarif -o portalsvet.sarif ./...
	@echo "wrote portalsvet.sarif"

# lint-baseline re-records the accepted findings. Use it when adopting a
# check over code that cannot be fixed or suppressed right away; review the
# lint/baseline.json diff like any other change.
lint-baseline:
	$(GO) run ./cmd/portalsvet $(LINTFLAGS) -write-baseline lint/baseline.json ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# bench runs the full suite and leaves a machine-readable summary in
# BENCH_baseline.json (cmd/benchjson) for diffing across changes. BENCHCPUS
# selects the -cpu variants; each result's GOMAXPROCS lands in the summary's
# "cpus" field (names carry the usual "-N" suffix when N > 1). Set
# BENCHLABEL to additionally write the run as BENCH_<label>.json; BENCHMIN
# fails the target when fewer results parse (guards against a typo'd
# pattern or a swallowed build failure producing an empty artifact).
BENCHCPUS ?= 1,4
BENCHMIN ?= 1
BENCHLABEL ?=
bench:
	$(GO) test -bench=. -benchmem -run=NONE -cpu=$(BENCHCPUS) -json . ./internal/obs/trace ./internal/stats ./internal/lint | \
		$(GO) run ./cmd/benchjson -o BENCH_baseline.json -min-results $(BENCHMIN) $(if $(BENCHLABEL),-label $(BENCHLABEL))
	@echo "wrote BENCH_baseline.json"

# bench-smoke is CI's quick variant: one iteration per fast-path benchmark,
# streamed through cmd/benchjson so parse failures or an empty stream fail
# the target — followed by the bench-diff regression gate when a baseline
# artifact exists.
bench-smoke:
	$(GO) test -run=NONE -bench='TranslateExact|Translate|DeliveryLanes|TraceRecord|CountersParallel|SwarmSteady|CollOffload|CTIncrement|PortalsvetLoad' \
		-benchtime=1x -cpu=$(BENCHCPUS) -json . ./internal/obs/trace ./internal/stats ./internal/lint | \
		$(GO) run ./cmd/benchjson -label ci-smoke -min-results 20
	@if [ -f BENCH_baseline.json ]; then $(MAKE) bench-diff; else echo "no BENCH_baseline.json; skipping bench-diff"; fi

# bench-diff fails (exit nonzero) when a benchmark regressed past
# BENCHTHRESHOLD vs the checked-in BENCH_baseline.json. The gated subset
# is the stable ~20-100ns-scale microbenchmarks (match-list translation,
# iovec scatter, counting-event increment — the per-message fast paths
# this repo optimizes) plus PortalsvetLoad, the analyzer's full-repo
# wall time, so a slow check regresses the build like any hot path;
# sub-5ns and multi-ms benchmarks are too noise-prone for a ratio gate.
# -count=3 feeds benchjson three runs per benchmark and Compare takes the
# best of each: scheduler noise is one-sided, so the minimum is the honest
# estimate. Refresh the baseline with `make bench` when hardware changes.
BENCHTHRESHOLD ?= 1.25
bench-diff:
	$(GO) test -run=NONE -bench='TranslateExact|TranslateDepth|IOVecScatter|CTIncrement|PortalsvetLoad' \
		-benchtime=200ms -count=3 -cpu=1 -json . ./internal/lint | \
		$(GO) run ./cmd/benchjson -diff BENCH_baseline.json -threshold $(BENCHTHRESHOLD) -min-results 10

# trace-smoke exercises the observability subsystem end to end: a small
# bypass run with the flight recorder and the metrics registry enabled,
# then artifact validation (cmd/tracecheck). -require-bypass asserts the
# §5.1 claim is visible in the capture: receive-side match/deliver/
# event-post instants inside the application's compute-burn spans.
trace-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/bypass -points 2 -iters 1 -max 2ms \
		-trace $$tmp/trace.json -metrics $$tmp/metrics.prom >/dev/null && \
	$(GO) run ./cmd/tracecheck -require-bypass \
		-trace $$tmp/trace.json -metrics $$tmp/metrics.prom; \
	status=$$?; rm -rf $$tmp; exit $$status

# coll-smoke exercises the triggered-operations subsystem end to end: a
# small offloaded-vs-host collective run with the flight recorder enabled,
# then cmd/tracecheck -require-offload asserting trig-fire instants (the
# chain executing on delivery lanes) land inside compute-burn spans — the
# NIC-offload claim, visible in the artifact.
coll-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/collbench -procs 2,8 -burns 1ms -iters 2 \
		-trace $$tmp/trace.json -metrics $$tmp/metrics.prom >/dev/null && \
	$(GO) run ./cmd/tracecheck -require-offload \
		-trace $$tmp/trace.json -metrics $$tmp/metrics.prom; \
	status=$$?; rm -rf $$tmp; exit $$status

# Regenerate every paper experiment (EXPERIMENTS.md records one such run).
sweep:
	$(GO) run ./cmd/sweep

# ci is everything the GitHub Actions workflow runs, for local parity.
ci: build lint test race trace-smoke coll-smoke

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/overlap
	$(GO) run ./examples/halo -n 3 -rows 64 -cols 64 -iters 20
	$(GO) run ./examples/onesided -n 4 -bins 16 -samples 2000
	$(GO) run ./examples/fileio

clean:
	$(GO) clean ./...
