// Package repro's root benchmarks regenerate every table and figure of
// the paper (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for recorded results):
//
//	E1/E2  BenchmarkFigure6*          wait time vs work interval
//	E3     BenchmarkPingPong*         zero-length / sized latency
//	E4     BenchmarkWire*             Tables 1–4 wire handling cost
//	E5     BenchmarkMemScale          unexpected-memory scaling
//	E6     BenchmarkTranslate*        Figure 3/4 match-list walk cost
//	E7     BenchmarkCollectives*      direct-vs-over-MPI collectives
//	E8     BenchmarkBandwidth*        throughput vs message size
//	E15    BenchmarkCollOffload,      offloaded vs host-driven collectives,
//	       BenchmarkCTIncrement       counting-event hot-path cost
//
// Custom metrics carry the experiment's quantity (wait-µs, MB/s, bytes)
// alongside the usual ns/op.
package repro

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/internal/nicsim"
	"repro/internal/rtscts"
	"repro/internal/stats"
	"repro/internal/swarm"
	"repro/internal/transport/loopback"
	"repro/internal/transport/simnet"
	"repro/internal/types"
	"repro/internal/wire"
	"repro/portals"
)

// ---------------------------------------------------------------- E1/E2 --

func benchFigure6(b *testing.B, stack experiments.Stack, work time.Duration, testCalls int) {
	cfg := experiments.DefaultBypassConfig()
	cfg.Iters = 1
	cfg.TestCalls = testCalls
	var total time.Duration
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunBypass(stack, work, cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += r.WaitTime
	}
	b.ReportMetric(float64(total.Microseconds())/float64(b.N), "wait-µs")
}

func BenchmarkFigure6Portals(b *testing.B) {
	for _, work := range []time.Duration{0, 4 * time.Millisecond, 8 * time.Millisecond} {
		b.Run(fmt.Sprintf("work=%v", work), func(b *testing.B) {
			benchFigure6(b, experiments.StackPortals, work, 0)
		})
	}
}

func BenchmarkFigure6GM(b *testing.B) {
	for _, work := range []time.Duration{0, 4 * time.Millisecond, 8 * time.Millisecond} {
		b.Run(fmt.Sprintf("work=%v", work), func(b *testing.B) {
			benchFigure6(b, experiments.StackGM, work, 0)
		})
	}
}

func BenchmarkFigure6TestCallsGM(b *testing.B) {
	// The §5.3 variant: 3 test calls during an 8 ms work interval.
	benchFigure6(b, experiments.StackGM, 8*time.Millisecond, 3)
}

// ------------------------------------------------------------------- E3 --

func benchPingPong(b *testing.B, fab portals.Fabric, size int) {
	iters := b.N
	if iters < 10 {
		iters = 10
	}
	lat, err := experiments.PingPong(fab, experiments.PingPongConfig{Size: size, Iters: iters})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(lat.Nanoseconds()), "latency-ns")
}

func BenchmarkPingPong0B(b *testing.B)         { benchPingPong(b, portals.Myrinet(), 0) }
func BenchmarkPingPong1KB(b *testing.B)        { benchPingPong(b, portals.Myrinet(), 1024) }
func BenchmarkPingPong0BLoopback(b *testing.B) { benchPingPong(b, portals.Loopback(), 0) }

// ------------------------------------------------------------------- E4 --

func BenchmarkWireEncodePut(b *testing.B) {
	h := wire.NewPut(types.ProcessID{NID: 1, PID: 2}, types.ProcessID{NID: 3, PID: 4},
		1, 0, 0xF00D, 0, types.Handle{Kind: types.KindMD, Index: 1, Gen: 1}, 50*1024, types.AckReq)
	buf := make([]byte, wire.HeaderSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Encode(buf)
	}
}

func BenchmarkWireDecodePut(b *testing.B) {
	h := wire.NewPut(types.ProcessID{NID: 1, PID: 2}, types.ProcessID{NID: 3, PID: 4},
		1, 0, 0xF00D, 0, types.Handle{Kind: types.KindMD, Index: 1, Gen: 1}, 50*1024, types.AckReq)
	buf := make([]byte, wire.HeaderSize)
	h.Encode(buf)
	var out wire.Header
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := out.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireAckReplyBuild(b *testing.B) {
	put := wire.NewPut(types.ProcessID{NID: 1, PID: 2}, types.ProcessID{NID: 3, PID: 4},
		1, 0, 0xF00D, 0, types.Handle{Kind: types.KindMD, Index: 1, Gen: 1}, 1024, types.AckReq)
	get := wire.NewGet(types.ProcessID{NID: 1, PID: 2}, types.ProcessID{NID: 3, PID: 4},
		1, 0, 0xF00D, 0, types.Handle{Kind: types.KindMD, Index: 1, Gen: 1}, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = wire.AckFor(&put, 1024)
		_ = wire.ReplyFor(&get, 1024)
	}
}

// ------------------------------------------------------------------- E6 --

// benchTranslate measures the Figure 4 walk: a match list of the given
// depth where the incoming put matches entry hitAt (0-based).
func benchTranslate(b *testing.B, depth, hitAt int) {
	st := core.NewState(types.ProcessID{NID: 1, PID: 1},
		types.Limits{MaxMEs: depth + 8, MaxMDs: depth + 8}, nil, &stats.Counters{})
	buf := make([]byte, 64)
	for i := 0; i < depth; i++ {
		me, err := st.MEAttach(0, types.ProcessID{NID: types.NIDAny, PID: types.PIDAny},
			types.MatchBits(i), 0, types.Retain, types.After)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.MDAttach(me, core.MD{
			Start: buf, Threshold: types.ThresholdInfinite,
			Options: types.MDOpPut | types.MDManageRemote,
		}, types.Retain); err != nil {
			b.Fatal(err)
		}
	}
	h := wire.NewPut(types.ProcessID{NID: 2, PID: 1}, types.ProcessID{NID: 1, PID: 1},
		0, 0, types.MatchBits(hitAt), 0, types.Handle{Kind: types.KindMD, Index: 0, Gen: 0}, 8, types.NoAckReq)
	payload := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.HandleIncoming(&h, payload)
	}
	if st.Counters().Dropped() != 0 {
		b.Fatalf("drops during translate bench: %v", st.Counters().Snapshot())
	}
}

func BenchmarkTranslateDepth(b *testing.B) {
	for _, depth := range []int{1, 16, 128, 1024} {
		b.Run(fmt.Sprintf("depth=%d/hit=first", depth), func(b *testing.B) {
			benchTranslate(b, depth, 0)
		})
		b.Run(fmt.Sprintf("depth=%d/hit=last", depth), func(b *testing.B) {
			benchTranslate(b, depth, depth-1)
		})
	}
}

// benchTranslateClass targets the match index (docs/PERF.md): depth entries
// where the incoming put matches only the LAST one. With exact=true every
// entry has a fully-specified matchID and no ignore bits, so the indexed
// walk is a hash lookup — constant in depth. With exact=false every entry
// uses ignore bits (the residual class), so the walk stays linear in both
// the indexed and the reference engine — the no-regression case.
func benchTranslateClass(b *testing.B, depth int, exact bool) {
	st := core.NewState(types.ProcessID{NID: 1, PID: 1},
		types.Limits{MaxMEs: depth + 8, MaxMDs: depth + 8}, nil, &stats.Counters{})
	buf := make([]byte, 64)
	for i := 0; i < depth; i++ {
		matchID := types.ProcessID{NID: 2, PID: types.PID(1000 + i)}
		bits, ignore := types.MatchBits(i), types.MatchBits(0)
		if !exact {
			matchID = types.ProcessID{NID: types.NIDAny, PID: types.PIDAny}
			bits, ignore = types.MatchBits(i)<<8, types.MatchBits(0xFF)
		}
		me, err := st.MEAttach(0, matchID, bits, ignore, types.Retain, types.After)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.MDAttach(me, core.MD{
			Start: buf, Threshold: types.ThresholdInfinite,
			Options: types.MDOpPut | types.MDManageRemote,
		}, types.Retain); err != nil {
			b.Fatal(err)
		}
	}
	hit := depth - 1
	initiator := types.ProcessID{NID: 2, PID: types.PID(1000 + hit)}
	bits := types.MatchBits(hit)
	if !exact {
		bits = types.MatchBits(hit) << 8
	}
	h := wire.NewPut(initiator, types.ProcessID{NID: 1, PID: 1},
		0, 0, bits, 0, types.Handle{Kind: types.KindMD, Index: 0, Gen: 0}, 8, types.NoAckReq)
	payload := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.HandleIncoming(&h, payload)
	}
	if st.Counters().Dropped() != 0 {
		b.Fatalf("drops during translate bench: %v", st.Counters().Snapshot())
	}
}

func BenchmarkTranslateExact(b *testing.B) {
	for _, depth := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("entries=%d", depth), func(b *testing.B) {
			benchTranslateClass(b, depth, true)
		})
	}
}

func BenchmarkTranslateWildcard(b *testing.B) {
	for _, depth := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("entries=%d", depth), func(b *testing.B) {
			benchTranslateClass(b, depth, false)
		})
	}
}

// BenchmarkTranslateAckPooled measures the full receive-and-ack fast path
// at the engine level: translate, deliver, encode the ack into a pooled
// buffer, recycle. Steady state must report 0 allocs/op.
func BenchmarkTranslateAckPooled(b *testing.B) {
	st := core.NewState(types.ProcessID{NID: 1, PID: 1},
		types.Limits{}, nil, &stats.Counters{})
	me, err := st.MEAttach(0, types.ProcessID{NID: types.NIDAny, PID: types.PIDAny},
		1, 0, types.Retain, types.After)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.MDAttach(me, core.MD{
		Start: make([]byte, 4096), Threshold: types.ThresholdInfinite,
		Options: types.MDOpPut | types.MDManageRemote,
	}, types.Retain); err != nil {
		b.Fatal(err)
	}
	h := wire.NewPut(types.ProcessID{NID: 2, PID: 1}, types.ProcessID{NID: 1, PID: 1},
		0, 0, 1, 0, types.Handle{Kind: types.KindMD, Index: 0, Gen: 0}, 1024, types.AckReq)
	payload := make([]byte, 1024)
	out := make([]core.Outbound, 0, 4)
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = st.HandleIncomingInto(&h, payload, out[:0])
		for j := range out {
			out[j].Recycle()
		}
	}
}

// ------------------------------------------------------------------- E8 --

func BenchmarkBandwidth(b *testing.B) {
	for _, size := range []int{4 << 10, 32 << 10, 128 << 10, 512 << 10} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			count := b.N
			if count < 8 {
				count = 8
			}
			pt, err := experiments.Bandwidth(portals.Myrinet(), size, count)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(size))
			b.ReportMetric(pt.MBps, "MB/s")
		})
	}
}

// ------------------------------------------------------------------- E5 --

func BenchmarkMemScale(b *testing.B) {
	for _, n := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			var p experiments.MemScalePoint
			for i := 0; i < b.N; i++ {
				m := portals.NewMachine(portals.Loopback())
				var err error
				p, err = experiments.MemScale(m, n, mpi.Config{}, 16, 32*1024)
				m.Close()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.PortalsBytes), "portals-bytes")
			b.ReportMetric(float64(p.VIABytes), "via-bytes")
		})
	}
}

// ------------------------------------------------------------------- E7 --

func BenchmarkCollectives(b *testing.B) {
	for _, n := range []int{4, 8} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			iters := b.N
			if iters < 5 {
				iters = 5
			}
			pts, err := experiments.CollAblation(portals.Loopback(), n, iters, 64)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pts {
				b.ReportMetric(float64(p.DirectPerOp.Microseconds()), p.Op+"-direct-µs")
				b.ReportMetric(float64(p.OverMPIPerOp.Microseconds()), p.Op+"-overmpi-µs")
			}
		})
	}
}

// ------------------------------------------------------------------- E15 --

// BenchmarkCollOffload measures the triggered (NIC-offloaded) collectives
// against the host-driven tree under a compute burn — the headline
// numbers of docs/PERF.md's offloaded-collectives table, at smoke scale.
func BenchmarkCollOffload(b *testing.B) {
	for _, n := range []int{4, 8} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			iters := b.N
			if iters < 4 {
				iters = 4
			}
			cfg := experiments.OffloadConfig{Iters: iters, Vec: 8, Lanes: 1}
			pts, err := experiments.RunOffload(portals.Loopback(), n, 500*time.Microsecond, cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pts {
				b.ReportMetric(float64(p.Offloaded.Microseconds()), p.Op+"-offloaded-µs")
				b.ReportMetric(float64(p.Host.Microseconds()), p.Op+"-host-µs")
			}
		})
	}
}

// BenchmarkCTIncrement is the triggered-op hot path at micro scale: one
// counting-event advance — the atomic increment plus armed-threshold
// check that runs per counted completion on the delivery lanes
// (core/ct.go ctInc). Triggered ops sit armed at unreachable thresholds
// so the measured cost is the common no-fire case; zero allocs is the
// portalsvet noalloc contract, asserted here dynamically too.
func BenchmarkCTIncrement(b *testing.B) {
	m := portals.NewMachine(portals.Loopback())
	defer m.Close()
	nis, err := m.LaunchJob(1)
	if err != nil {
		b.Fatal(err)
	}
	ni := nis[0]
	ct, err := ni.CTAlloc()
	if err != nil {
		b.Fatal(err)
	}
	res, err := ni.CTAlloc()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := ni.TriggeredCTInc(res, portals.CTValue{Success: 1}, ct, 1<<62); err != nil {
			b.Fatal(err)
		}
	}
	one := portals.CTValue{Success: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ni.CTInc(ct, one); err != nil {
			b.Fatal(err)
		}
	}
}

// ----------------------------------------------------- supporting micro --

// BenchmarkMPIPingPong measures the full MPI stack round trip on the
// loopback fabric (protocol cost without wire time), eager and long.
func BenchmarkMPIPingPong(b *testing.B) {
	for _, size := range []int{64, 100 * 1024} {
		name := "eager"
		if size > 32*1024 {
			name = "long"
		}
		b.Run(name, func(b *testing.B) {
			m := portals.NewMachine(portals.Loopback())
			defer m.Close()
			w, err := mpi.NewWorld(m, 2, mpi.Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			err = w.Run(func(c *mpi.Comm) error {
				buf := make([]byte, size)
				peer := 1 - c.Rank()
				for i := 0; i < b.N; i++ {
					if c.Rank() == 0 {
						if err := c.Send(buf, peer, 1); err != nil {
							return err
						}
						if _, err := c.Recv(buf, peer, 2); err != nil {
							return err
						}
					} else {
						if _, err := c.Recv(buf, peer, 1); err != nil {
							return err
						}
						if err := c.Send(buf, peer, 2); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkPutDelivery measures the core engine's end-to-end put path on
// loopback: initiate, deliver, event.
func BenchmarkPutDelivery(b *testing.B) {
	m := portals.NewMachine(portals.Loopback())
	defer m.Close()
	rx, err := m.NIInit(1, 1, portals.Limits{})
	if err != nil {
		b.Fatal(err)
	}
	tx, err := m.NIInit(2, 1, portals.Limits{})
	if err != nil {
		b.Fatal(err)
	}
	eq, err := rx.EQAlloc(1024)
	if err != nil {
		b.Fatal(err)
	}
	me, err := rx.MEAttach(0, portals.AnyProcess, 1, 0, portals.Retain, portals.After)
	if err != nil {
		b.Fatal(err)
	}
	sink := make([]byte, 4096)
	if _, err := rx.MDAttach(me, portals.MD{
		Start: sink, Threshold: portals.ThresholdInfinite,
		Options: portals.MDOpPut | portals.MDManageRemote, EQ: eq,
	}, portals.Retain); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	md, err := tx.MDBind(portals.MD{Start: payload, Threshold: portals.ThresholdInfinite}, portals.Retain)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Put(md, portals.NoAckReq, rx.ID(), 0, 0, 1, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := rx.EQPoll(eq, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------------ E12 --

func BenchmarkReceiveOverhead(b *testing.B) {
	for _, row := range []struct {
		name  string
		model portals.NICModel
		cost  time.Duration
	}{
		{"nic-offload", portals.NICOffload, 0},
		{"interrupt", portals.HostInterrupt, 20 * time.Microsecond},
	} {
		b.Run(row.name, func(b *testing.B) {
			cfg := experiments.OverheadConfig{ComputeIters: 4000, MsgSize: 1024, MsgGap: 50 * time.Microsecond}
			var slow float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.ReceiveOverhead(row.model, row.cost, cfg)
				if err != nil {
					b.Fatal(err)
				}
				slow += r.SlowdownPct
			}
			b.ReportMetric(slow/float64(b.N), "slowdown-%")
		})
	}
}

// ------------------------------------------------------------------ E13 --

// BenchmarkIOVecScatter compares delivery into a contiguous descriptor
// with delivery scattered across 8 segments (the §7 extension).
func BenchmarkIOVecScatter(b *testing.B) {
	run := func(b *testing.B, md portals.MD) {
		st := core.NewState(types.ProcessID{NID: 1, PID: 1}, types.Limits{}, nil, &stats.Counters{})
		me, err := st.MEAttach(0, types.ProcessID{NID: types.NIDAny, PID: types.PIDAny},
			1, 0, types.Retain, types.After)
		if err != nil {
			b.Fatal(err)
		}
		cmd := core.MD{Start: md.Start, Segments: md.Segments,
			Threshold: types.ThresholdInfinite, Options: types.MDOpPut | types.MDManageRemote}
		if _, err := st.MDAttach(me, cmd, types.Retain); err != nil {
			b.Fatal(err)
		}
		h := wire.NewPut(types.ProcessID{NID: 2, PID: 1}, types.ProcessID{NID: 1, PID: 1},
			0, 0, 1, 0, types.Handle{Kind: types.KindMD, Index: 0, Gen: 0}, 4096, types.NoAckReq)
		payload := make([]byte, 4096)
		b.SetBytes(4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.HandleIncoming(&h, payload)
		}
	}
	b.Run("contiguous", func(b *testing.B) {
		run(b, portals.MD{Start: make([]byte, 4096)})
	})
	b.Run("segments=8", func(b *testing.B) {
		segs := make([][]byte, 8)
		for i := range segs {
			segs[i] = make([]byte, 512)
		}
		run(b, portals.MD{Segments: segs})
	})
}

// ------------------------------------------------------------------ E14 --

// benchDeliveryLanes drives the multi-lane delivery engine (docs/PERF.md
// §5) at full tilt: `initiators` nodes blast 4 KB puts at `initiators`
// distinct processes on one target node, and the benchmark completes when
// the target has received them all. Distinct (src NID, target PID) pairs
// are distinct flows, so with enough lanes they process in parallel;
// distinct target processes keep the portal locks disjoint too, so the
// lanes — not a shared lock — are what is measured. No event queues are
// armed: receive counters detect completion without an EQ consumer in the
// timed path.
func benchDeliveryLanes(b *testing.B, lanes, initiators int) {
	net := loopback.New()
	defer net.Close()
	target, err := nicsim.NewNode(net, 100, nicsim.Config{Lanes: lanes})
	if err != nil {
		b.Fatal(err)
	}
	defer target.Close()
	rxStates := make([]*core.State, initiators)
	for i := range rxStates {
		pid := types.PID(10 + i)
		st := core.NewState(types.ProcessID{NID: 100, PID: pid}, types.Limits{}, nil, &stats.Counters{})
		if err := target.AddProcess(pid, st); err != nil {
			b.Fatal(err)
		}
		me, err := st.MEAttach(0, types.ProcessID{NID: types.NIDAny, PID: types.PIDAny}, 1, 0, types.Retain, types.After)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.MDAttach(me, core.MD{
			Start: make([]byte, 4096), Threshold: types.ThresholdInfinite,
			Options: types.MDOpPut | types.MDManageRemote,
		}, types.Retain); err != nil {
			b.Fatal(err)
		}
		rxStates[i] = st
	}

	type tx struct {
		node  *nicsim.Node
		state *core.State
		md    types.Handle
	}
	senders := make([]tx, initiators)
	for i := range senders {
		node, err := nicsim.NewNode(net, types.NID(i+1), nicsim.Config{Lanes: lanes})
		if err != nil {
			b.Fatal(err)
		}
		defer node.Close()
		st := core.NewState(types.ProcessID{NID: types.NID(i + 1), PID: 1}, types.Limits{}, nil, &stats.Counters{})
		if err := node.AddProcess(1, st); err != nil {
			b.Fatal(err)
		}
		md, err := st.MDBind(core.MD{Start: make([]byte, 4096), Threshold: types.ThresholdInfinite}, types.Retain)
		if err != nil {
			b.Fatal(err)
		}
		senders[i] = tx{node: node, state: st, md: md}
	}

	per := (b.N + initiators - 1) / initiators
	total := int64(per * initiators)
	b.SetBytes(4096)
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := range senders {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := senders[i]
			dst := types.ProcessID{NID: 100, PID: types.PID(10 + i)}
			for j := 0; j < per; j++ {
				out, err := s.state.StartPut(s.md, types.NoAckReq, dst, 0, 0, 1, 0)
				if err != nil {
					b.Error(err)
					return
				}
				if err := s.node.Send(out); err != nil {
					b.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for {
		var got int64
		for _, st := range rxStates {
			got += st.Counters().Snapshot().RecvMsgs
		}
		if got >= total {
			break
		}
		runtime.Gosched()
	}
}

// BenchmarkDeliveryLanes is the scaling grid for the multi-lane engine:
// aggregate receive throughput must grow near-linearly with lanes while
// lanes=1 stays within noise of the serial engine. Run with -cpu=1,4 to
// see the lanes×GOMAXPROCS interaction (make bench records both).
func BenchmarkDeliveryLanes(b *testing.B) {
	for _, lanes := range []int{1, 2, 4, 8} {
		for _, initiators := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("lanes=%d/initiators=%d", lanes, initiators), func(b *testing.B) {
				benchDeliveryLanes(b, lanes, initiators)
			})
		}
	}
}

// ----------------------------------------------- eager/rendezvous knob --

// BenchmarkEagerThreshold is the transport-level ablation DESIGN.md calls
// out: the same 64 KB message stream with the rendezvous threshold below
// (RTS/CTS round trip per message) and above (pure eager) the message
// size. The gap is the cost of receiver-managed flow control.
func BenchmarkEagerThreshold(b *testing.B) {
	const msgSize = 64 << 10
	for _, cfg := range []struct {
		name  string
		eager int
	}{
		{"rendezvous", 8 << 10},
		{"eager", 128 << 10},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			fab := portals.SimFabric(simnet.Myrinet(), rtscts.Config{EagerMax: cfg.eager})
			count := b.N
			if count < 8 {
				count = 8
			}
			pt, err := experiments.Bandwidth(fab, msgSize, count)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(msgSize)
			b.ReportMetric(pt.MBps, "MB/s")
		})
	}
}

// --------------------------------------------------- swarm steady state --

// BenchmarkSwarmSteady runs the internal/swarm closed-loop harness at two
// endpoint counts. ns/op includes fabric setup (it builds the endpoints
// inside the timed region — unavoidable, Run is one call); the ns/msg
// metric is the steady-state per-message engine cost, and staying flat
// between the two sub-benchmarks is the lock-free read-path regression
// check CI's bench-smoke watches. cmd/swarm runs the full 1k→100k sweep.
func BenchmarkSwarmSteady(b *testing.B) {
	for _, ep := range []int{1024, 8192} {
		b.Run(fmt.Sprintf("endpoints=%d", ep), func(b *testing.B) {
			msgs := b.N
			if msgs < 256 {
				msgs = 256
			}
			rep, err := swarm.Run(swarm.Config{
				Endpoints:      ep,
				MEsPerEndpoint: 4,
				Nodes:          8,
				Drivers:        1,
				Messages:       msgs,
				PayloadBytes:   64,
				Seed:           1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Acked != rep.Sent {
				b.Fatalf("acked %d of %d sent", rep.Acked, rep.Sent)
			}
			b.ReportMetric(rep.NsPerMsg, "ns/msg")
			b.ReportMetric(float64(rep.P99), "p99-ns")
		})
	}
}
